// PageRank over the tile store (paper §II-B).
//
// Push-style accumulation: every stored edge forwards rank/degree from its
// tail to its head. On symmetric stores each tuple contributes in both
// directions (the undirected adaptation of the paper's Algorithm 1 idea
// applied to PageRank). All graph data is reused every iteration, so the
// proactive-caching oracle always answers true — matching the paper's
// observation that for PageRank nearly 100% of cached data is reused.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/degree.h"
#include "graph/types.h"
#include "store/algorithm.h"

namespace gstore::algo {

struct PageRankOptions {
  double damping = 0.85;
  std::uint32_t max_iterations = 10;
  // Early-exit when the max |Δrank| over all vertices drops below this
  // (0 disables and runs exactly max_iterations).
  double tolerance = 0.0;
};

class TilePageRank final : public store::TileAlgorithm {
 public:
  explicit TilePageRank(PageRankOptions options = {}) : options_(options) {}

  std::string name() const override { return "pagerank"; }
  void init(const tile::TileStore& store) override;
  void begin_iteration(std::uint32_t iter) override;
  void process_tile(const tile::TileView& view) override;
  void process_block(const tile::EdgeBlock& block) override;
  bool end_iteration(std::uint32_t iter) override;

  const std::vector<float>& ranks() const noexcept { return rank_; }
  std::uint32_t iterations_run() const noexcept { return iterations_; }
  double last_delta() const noexcept { return last_delta_; }

 private:
  PageRankOptions options_;
  bool symmetric_ = true;
  bool in_edges_ = false;
  graph::vid_t n_ = 0;
  std::uint32_t iterations_ = 0;
  double last_delta_ = 0.0;
  graph::CompressedDegrees degrees_;
  std::vector<float> rank_;       // rank at the start of the iteration
  std::vector<float> contrib_;    // rank[v]/deg[v], precomputed per iteration
  std::vector<float> incoming_;   // accumulated neighbour contributions
};

}  // namespace gstore::algo
