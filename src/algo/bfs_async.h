// Asynchronous BFS (paper §II-B cites Pearce et al. [26]: asynchronous
// traversal "reduces the total number of iterations needed").
//
// Instead of synchronous level-by-level expansion, every pass relaxes
// depth[to] = min(depth[to], depth[from]+1) using the freshest values —
// depth improvements propagate *within* a pass, through as many tiles as the
// processing order allows. Converges to exact BFS depths in at most as many
// passes as the synchronous level count, usually far fewer.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/types.h"
#include "store/algorithm.h"

namespace gstore::algo {

class TileBfsAsync final : public store::TileAlgorithm {
 public:
  static constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();

  explicit TileBfsAsync(graph::vid_t root) : root_(root) {}

  std::string name() const override { return "bfs-async"; }
  void init(const tile::TileStore& store) override;
  void begin_iteration(std::uint32_t iter) override;
  void process_tile(const tile::TileView& view) override;
  void process_block(const tile::EdgeBlock& block) override;
  bool end_iteration(std::uint32_t iter) override;
  bool tile_needed(std::uint32_t i, std::uint32_t j) const override;
  bool tile_useful_next(std::uint32_t i, std::uint32_t j) const override;

  // Depths in BFS convention: -1 for unreachable (after convergence).
  std::vector<std::int32_t> depths() const;
  std::uint32_t passes() const noexcept { return passes_; }

 private:
  void relax(graph::vid_t to, std::int32_t cand);

  graph::vid_t root_;
  bool symmetric_ = true;
  bool in_edges_ = false;
  unsigned tile_bits_ = 16;
  std::uint64_t relaxed_ = 0;
  std::uint32_t passes_ = 0;
  std::vector<std::int32_t> depth_;
  std::vector<std::uint8_t> active_row_cur_;
  std::vector<std::uint8_t> active_row_next_;
};

}  // namespace gstore::algo
