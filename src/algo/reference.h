// In-memory reference implementations used to validate the tile engine and
// the baseline engines. Deliberately simple textbook algorithms over CSR.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace gstore::algo {

// BFS depths from `root`; unreachable = -1. For directed graphs follows
// out-edges.
std::vector<std::int32_t> ref_bfs(const graph::EdgeList& el, graph::vid_t root);

// PageRank with exactly `iterations` synchronous iterations in double
// precision (tight bound for the float tile engine). Directed graphs use
// out-degree push, matching TilePageRank.
std::vector<double> ref_pagerank(const graph::EdgeList& el,
                                 std::uint32_t iterations,
                                 double damping = 0.85);

// Weakly-connected components: label = smallest vertex id in the component
// (union-find under the hood).
std::vector<graph::vid_t> ref_wcc(const graph::EdgeList& el);

// Dijkstra distances using algo::edge_weight() (see sssp.h); unreachable =
// +inf. Directed graphs follow out-edges.
std::vector<float> ref_sssp(const graph::EdgeList& el, graph::vid_t root);

}  // namespace gstore::algo
