#include "algo/scc.h"

#include <algorithm>
#include <numeric>

#include "algo/atomics.h"
#include "graph/csr.h"
#include "util/status.h"

namespace gstore::algo {

// ---- TileReach ------------------------------------------------------------

void TileReach::init(const tile::TileStore& store) {
  GS_CHECK_MSG(!store.meta().symmetric(),
               "TileReach traverses directed tuples; use TileBfs for "
               "undirected stores");
  tile_bits_ = store.meta().tile_bits;
  GS_CHECK_MSG(root_ < store.vertex_count(), "reach root out of range");
  GS_CHECK_MSG(mask_ == nullptr || mask_->size() == store.vertex_count(),
               "mask size mismatch");

  reached_.assign(store.vertex_count(), 0);
  frontier_row_cur_.assign(store.grid().p(), 0);
  frontier_row_next_.assign(store.grid().p(), 0);
  reached_[root_] = 1;
  frontier_row_cur_[root_ >> tile_bits_] = 1;
}

void TileReach::begin_iteration(std::uint32_t) { new_reached_ = 0; }

void TileReach::process_tile(const tile::TileView& view) {
  process_tile_blocked(view);
}

void TileReach::process_block(const tile::EdgeBlock& block) {
  block.prefetch_src(reached_.data());
  block.prefetch_dst(reached_.data());
  for (std::uint32_t k = 0; k < block.size; ++k) {
    const graph::vid_t a = block.src[k];
    const graph::vid_t b = block.dst[k];
    // Tuples followed verbatim: a → b.
    if (!atomic_load(&reached_[a]) || atomic_load(&reached_[b])) continue;
    if (mask_ != nullptr && (!(*mask_)[a] || !(*mask_)[b])) continue;
    if (atomic_cas<std::uint8_t>(&reached_[b], 0, 1)) {
      atomic_set_flag(&frontier_row_next_[b >> tile_bits_]);
      std::atomic_ref<std::uint64_t>(new_reached_)
          .fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool TileReach::end_iteration(std::uint32_t) {
  frontier_row_cur_.swap(frontier_row_next_);
  std::fill(frontier_row_next_.begin(), frontier_row_next_.end(), 0);
  return new_reached_ > 0;
}

bool TileReach::tile_needed(std::uint32_t i, std::uint32_t) const {
  return frontier_row_cur_[i] != 0;
}

bool TileReach::tile_useful_next(std::uint32_t i, std::uint32_t) const {
  return frontier_row_next_[i] != 0;
}

// ---- tile_scc ---------------------------------------------------------------

std::vector<graph::vid_t> tile_scc(tile::TileStore& out_store,
                                   tile::TileStore& in_store,
                                   SccOptions options) {
  GS_CHECK_MSG(out_store.meta().directed() && !out_store.meta().in_edges(),
               "out_store must hold out-edges of a directed graph");
  GS_CHECK_MSG(in_store.meta().directed() && in_store.meta().in_edges(),
               "in_store must hold in-edges of a directed graph");
  GS_CHECK_MSG(out_store.vertex_count() == in_store.vertex_count(),
               "stores disagree on vertex count");
  const graph::vid_t n = out_store.vertex_count();

  std::vector<graph::vid_t> label(n, graph::kInvalidVid);
  std::vector<std::uint8_t> unassigned(n, 1);

  // Trim: vertices with no out-edges or no in-edges are singleton SCCs.
  // (Degrees come from the stores' degree files: out for out_store, and the
  // in_store was converted from the same edge list so its .deg file also
  // holds out-degrees — recompute in-degrees from the out-store instead.)
  {
    std::vector<std::uint8_t> has_out(n, 0), has_in(n, 0);
    std::vector<std::uint8_t> buf;
    for (std::uint64_t k = 0; k < out_store.grid().tile_count(); ++k) {
      const std::uint64_t bytes = out_store.tile_bytes(k);
      if (bytes == 0) continue;
      buf.resize(bytes);
      out_store.read_range(k, k + 1, buf.data());
      tile::visit_edges(out_store.view(k, buf.data()),
                        [&](graph::vid_t a, graph::vid_t b) {
                          has_out[a] = 1;
                          has_in[b] = 1;
                        });
    }
    for (graph::vid_t v = 0; v < n; ++v) {
      if (!has_out[v] || !has_in[v]) {
        label[v] = v;
        unassigned[v] = 0;
      }
    }
  }

  // Pivot loop.
  for (graph::vid_t pivot = 0; pivot < n; ++pivot) {
    if (!unassigned[pivot]) continue;

    TileReach fwd(pivot, &unassigned);
    store::ScrEngine(out_store, options.engine).run(fwd);
    TileReach bwd(pivot, &unassigned);
    store::ScrEngine(in_store, options.engine).run(bwd);

    // SCC = FW ∩ BW; its id is the smallest member.
    graph::vid_t min_id = pivot;
    for (graph::vid_t v = 0; v < n; ++v)
      if (fwd.reached()[v] && bwd.reached()[v]) min_id = std::min(min_id, v);
    for (graph::vid_t v = 0; v < n; ++v) {
      if (fwd.reached()[v] && bwd.reached()[v]) {
        label[v] = min_id;
        unassigned[v] = 0;
      }
    }
  }
  return label;
}

// ---- ref_scc (iterative Tarjan) --------------------------------------------

std::vector<graph::vid_t> ref_scc(const graph::EdgeList& el) {
  GS_CHECK_MSG(el.kind() == graph::GraphKind::kDirected,
               "SCC reference requires a directed graph");
  const graph::Csr csr = graph::Csr::build(el, /*out_edges=*/true);
  const graph::vid_t n = el.vertex_count();

  constexpr std::uint32_t kUnset = ~std::uint32_t{0};
  std::vector<std::uint32_t> index(n, kUnset), lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<graph::vid_t> stack;                 // Tarjan stack
  std::vector<graph::vid_t> label(n, graph::kInvalidVid);
  std::uint32_t next_index = 0;

  struct Frame {
    graph::vid_t v;
    std::size_t edge;  // position within neighbors(v)
  };
  std::vector<Frame> call;

  for (graph::vid_t start = 0; start < n; ++start) {
    if (index[start] != kUnset) continue;
    call.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = 1;

    while (!call.empty()) {
      Frame& f = call.back();
      const auto nbrs = csr.neighbors(f.v);
      if (f.edge < nbrs.size()) {
        const graph::vid_t w = nbrs[f.edge++];
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          call.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const graph::vid_t v = f.v;
        call.pop_back();
        if (!call.empty())
          lowlink[call.back().v] = std::min(lowlink[call.back().v], lowlink[v]);
        if (lowlink[v] == index[v]) {
          // Pop the component; label with its smallest vertex id.
          std::vector<graph::vid_t> comp;
          for (;;) {
            const graph::vid_t w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            comp.push_back(w);
            if (w == v) break;
          }
          const graph::vid_t min_id = *std::min_element(comp.begin(), comp.end());
          for (graph::vid_t w : comp) label[w] = min_id;
        }
      }
    }
  }
  return label;
}

}  // namespace gstore::algo
