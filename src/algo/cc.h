// Connected components via min-label propagation (paper §II-B, Algorithm 2;
// Shiloach–Vishkin-style iterative labeling after [31]/[4]).
//
// Every stored edge propagates the smaller component label across itself in
// both directions — for directed graphs this computes *weakly* connected
// components from a single stored edge direction, which is exactly the
// saving Algorithm 2 argues for (no broadcast over the other direction).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "store/algorithm.h"

namespace gstore::algo {

class TileWcc final : public store::TileAlgorithm {
 public:
  std::string name() const override { return "wcc"; }
  void init(const tile::TileStore& store) override;
  void begin_iteration(std::uint32_t iter) override;
  void process_tile(const tile::TileView& view) override;
  void process_block(const tile::EdgeBlock& block) override;
  bool end_iteration(std::uint32_t iter) override;
  bool tile_needed(std::uint32_t i, std::uint32_t j) const override;
  // All tiles stay useful while labels keep moving (the paper runs CC over
  // the full graph each iteration to ride sequential bandwidth).
  bool tile_useful_next(std::uint32_t, std::uint32_t) const override {
    return changed_ != 0;
  }

  const std::vector<graph::vid_t>& labels() const noexcept { return label_; }
  std::uint64_t component_count() const;

 private:
  unsigned tile_bits_ = 16;
  std::uint64_t changed_ = 0;  // label updates this iteration (atomic)
  std::uint32_t iteration_ = 0;
  std::vector<graph::vid_t> label_;
};

}  // namespace gstore::algo
