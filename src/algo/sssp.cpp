#include "algo/sssp.h"

#include <algorithm>

#include "algo/atomics.h"
#include "util/status.h"

namespace gstore::algo {

void TileSssp::init(const tile::TileStore& store) {
  const auto& meta = store.meta();
  symmetric_ = meta.symmetric();
  in_edges_ = meta.in_edges();
  tile_bits_ = meta.tile_bits;
  GS_CHECK_MSG(root_ < store.vertex_count(), "SSSP root out of range");

  dist_.assign(store.vertex_count(), kInf);
  active_row_cur_.assign(store.grid().p(), 0);
  active_row_next_.assign(store.grid().p(), 0);
  dist_[root_] = 0.0f;
  active_row_cur_[root_ >> tile_bits_] = 1;
  relaxed_ = 0;
}

void TileSssp::begin_iteration(std::uint32_t) { relaxed_ = 0; }

void TileSssp::relax(graph::vid_t to, float cand) {
  if (atomic_min(&dist_[to], cand)) {
    atomic_set_flag(&active_row_next_[to >> tile_bits_]);
    std::atomic_ref<std::uint64_t>(relaxed_).fetch_add(
        1, std::memory_order_relaxed);
  }
}

void TileSssp::process_tile(const tile::TileView& view) {
  process_tile_blocked(view);
}

void TileSssp::process_block(const tile::EdgeBlock& block) {
  const graph::vid_t* from = in_edges_ ? block.dst : block.src;
  const graph::vid_t* to = in_edges_ ? block.src : block.dst;
  block.prefetch_src(dist_.data());
  block.prefetch_dst(dist_.data());
  for (std::uint32_t k = 0; k < block.size; ++k) {
    const float w = edge_weight(block.src[k], block.dst[k]);
    const float df = atomic_load(&dist_[from[k]]);
    if (df != kInf) relax(to[k], df + w);
    if (symmetric_) {
      const float dt = atomic_load(&dist_[to[k]]);
      if (dt != kInf) relax(from[k], dt + w);
    }
  }
}

bool TileSssp::end_iteration(std::uint32_t) {
  active_row_cur_.swap(active_row_next_);
  std::fill(active_row_next_.begin(), active_row_next_.end(), 0);
  return relaxed_ > 0;
}

bool TileSssp::tile_needed(std::uint32_t i, std::uint32_t j) const {
  if (active_row_cur_[in_edges_ ? j : i]) return true;
  return symmetric_ && active_row_cur_[j];
}

bool TileSssp::tile_useful_next(std::uint32_t i, std::uint32_t j) const {
  if (active_row_next_[in_edges_ ? j : i]) return true;
  return symmetric_ && active_row_next_[j];
}

}  // namespace gstore::algo
