#include "algo/sssp.h"

#include <algorithm>

#include "algo/atomics.h"
#include "util/status.h"

namespace gstore::algo {

void TileSssp::init(const tile::TileStore& store) {
  const auto& meta = store.meta();
  symmetric_ = meta.symmetric();
  in_edges_ = meta.in_edges();
  tile_bits_ = meta.tile_bits;
  GS_CHECK_MSG(root_ < store.vertex_count(), "SSSP root out of range");

  dist_.assign(store.vertex_count(), kInf);
  active_row_cur_.assign(store.grid().p(), 0);
  active_row_next_.assign(store.grid().p(), 0);
  row_pending_.assign(store.grid().p(), kInf);
  dist_[root_] = 0.0f;
  active_row_cur_[root_ >> tile_bits_] = 1;
  row_pending_[root_ >> tile_bits_] = 0.0f;
  relaxed_ = 0;
}

void TileSssp::begin_iteration(std::uint32_t) { relaxed_ = 0; }

void TileSssp::relax(graph::vid_t to, float cand) {
  if (atomic_min(&dist_[to], cand)) {
    atomic_set_flag(&active_row_next_[to >> tile_bits_]);
    atomic_min(&row_pending_[to >> tile_bits_], cand);
    std::atomic_ref<std::uint64_t>(relaxed_).fetch_add(
        1, std::memory_order_relaxed);
  }
}

void TileSssp::process_tile(const tile::TileView& view) {
  process_tile_blocked(view);
}

void TileSssp::process_block(const tile::EdgeBlock& block) {
  const graph::vid_t* from = in_edges_ ? block.dst : block.src;
  const graph::vid_t* to = in_edges_ ? block.src : block.dst;
  block.prefetch_src(dist_.data());
  block.prefetch_dst(dist_.data());
  for (std::uint32_t k = 0; k < block.size; ++k) {
    const float w = edge_weight(block.src[k], block.dst[k]);
    const float df = atomic_load(&dist_[from[k]]);
    if (df != kInf) relax(to[k], df + w);
    if (symmetric_) {
      const float dt = atomic_load(&dist_[to[k]]);
      if (dt != kInf) relax(from[k], dt + w);
    }
  }
}

bool TileSssp::end_iteration(std::uint32_t) {
  active_row_cur_.swap(active_row_next_);
  std::fill(active_row_next_.begin(), active_row_next_.end(), 0);
  return relaxed_ > 0;
}

bool TileSssp::tile_needed(std::uint32_t i, std::uint32_t j) const {
  if (active_row_cur_[in_edges_ ? j : i]) return true;
  return symmetric_ && active_row_cur_[j];
}

bool TileSssp::tile_useful_next(std::uint32_t i, std::uint32_t j) const {
  if (active_row_next_[in_edges_ ? j : i]) return true;
  return symmetric_ && active_row_next_[j];
}

// ---- delta-stepping (priority mode) ---------------------------------------

std::uint32_t TileSssp::bucket_of(float d) const {
  if (d == kInf) return kPriorityIdle;
  // The worklist clamps anything at or above its overflow bucket, so the
  // only care here is not overflowing the uint32 conversion itself.
  const float b = d / delta_;
  if (b >= 1e9f) return kPriorityIdle - 1;
  return static_cast<std::uint32_t>(b);
}

std::uint32_t TileSssp::tile_priority(std::uint32_t i, std::uint32_t j) const {
  // Same rows the tile_needed oracle consults: a tile can relax only from a
  // row holding pending (un-drained) candidate distances.
  std::uint32_t p = bucket_of(row_pending_[in_edges_ ? j : i]);
  if (symmetric_) p = std::min(p, bucket_of(row_pending_[j]));
  return p;
}

void TileSssp::begin_round(std::uint32_t, std::uint32_t bucket) {
  relaxed_ = 0;
  drained_rows_.clear();
  // Drain every row whose pending bucket this round covers. Clearing the
  // pending mark *before* processing lets in-round relaxations re-arm the
  // row for a later round (the delta-stepping re-entry rule).
  for (std::uint32_t r = 0; r < row_pending_.size(); ++r) {
    if (row_pending_[r] == kInf) continue;
    if (bucket_of(row_pending_[r]) > bucket) continue;
    row_pending_[r] = kInf;
    drained_rows_.push_back(r);
  }
}

bool TileSssp::end_round(std::uint32_t, std::uint32_t) {
  // Rows drained this round and rows that took a relaxation both change
  // tile priorities; everything else is untouched.
  dirty_rows_ = drained_rows_;
  bool any_pending = false;
  for (std::uint32_t r = 0; r < row_pending_.size(); ++r) {
    if (active_row_next_[r]) dirty_rows_.push_back(r);
    // Keep the grid-mode oracles coherent for the caching policy: a row is
    // "active" exactly while it holds pending work.
    active_row_cur_[r] = row_pending_[r] != kInf ? 1 : 0;
    any_pending |= active_row_cur_[r] != 0;
  }
  std::fill(active_row_next_.begin(), active_row_next_.end(), 0);
  return relaxed_ > 0 || any_pending;
}

bool TileSssp::dirty_rows(std::vector<std::uint32_t>& out) const {
  out.insert(out.end(), dirty_rows_.begin(), dirty_rows_.end());
  return true;
}

bool TileSssp::reactivate(const tile::TileStore& store,
                          std::span<const std::uint64_t> delta_tiles) {
  // Requires the converged state of a prior run over this store; relaxation
  // is monotone under edge insertion, so resuming from old distances and
  // re-arming only the delta-touched rows reaches the same fixpoint a cold
  // rerun would.
  if (dist_.size() != store.vertex_count()) return false;
  const tile::Grid& grid = store.grid();
  relaxed_ = 0;
  drained_rows_.clear();
  dirty_rows_.clear();
  std::fill(active_row_next_.begin(), active_row_next_.end(), 0);
  std::vector<std::uint8_t> armed(grid.p(), 0);
  auto arm_row = [&](std::uint32_t r) {
    if (armed[r]) return;
    armed[r] = 1;
    // The row's pending value is the minimum distance it could propagate
    // from: processing its tiles relaxes across every edge (old and new
    // overlay ones alike), so any finite source distance re-enters the
    // wave at its own bucket. An all-infinite row cannot relax anything —
    // the delta connects only unreached vertices there — and stays idle.
    const graph::vid_t lo = static_cast<graph::vid_t>(r) << tile_bits_;
    const graph::vid_t hi = static_cast<graph::vid_t>(
        std::min<std::uint64_t>(dist_.size(),
                                (static_cast<std::uint64_t>(r) + 1)
                                    << tile_bits_));
    float best = kInf;
    for (graph::vid_t v = lo; v < hi; ++v) best = std::min(best, dist_[v]);
    row_pending_[r] = best;
    if (best != kInf) active_row_cur_[r] = 1;
  };
  for (const std::uint64_t idx : delta_tiles) {
    const tile::TileCoord c = grid.coord_at(idx);
    arm_row(c.i);
    arm_row(c.j);
  }
  return true;
}

}  // namespace gstore::algo
