// Breadth-first search over the tile store (paper §II-B, Algorithm 1).
//
// On symmetric (undirected upper-triangle) stores each tile is processed in
// both directions — the extra lines 8-10 of the paper's Algorithm 1. The
// selective-fetch oracle skips tiles whose row/column ranges contain no
// current-level frontier, and the proactive-caching oracle exposes the
// partially-known next-iteration frontier (Rules 1 & 2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "store/algorithm.h"

namespace gstore::algo {

class TileBfs final : public store::TileAlgorithm {
 public:
  static constexpr std::int32_t kUnvisited = -1;

  explicit TileBfs(graph::vid_t root) : root_(root) {}

  std::string name() const override { return "bfs"; }
  void init(const tile::TileStore& store) override;
  void begin_iteration(std::uint32_t iter) override;
  void process_tile(const tile::TileView& view) override;
  void process_block(const tile::EdgeBlock& block) override;
  bool end_iteration(std::uint32_t iter) override;
  bool tile_needed(std::uint32_t i, std::uint32_t j) const override;
  bool tile_useful_next(std::uint32_t i, std::uint32_t j) const override;

  // Priority mode: every frontier tile carries the current level as its
  // bucket, so one worklist round == one level-sync iteration and results
  // are trivially bit-identical to grid order — the win is the worklist
  // skipping the per-iteration grid scan and bucket numbers matching BFS
  // levels in the stats.
  std::uint32_t tile_priority(std::uint32_t i, std::uint32_t j) const override;
  bool end_round(std::uint32_t round, std::uint32_t bucket) override;
  std::uint64_t last_round_updates() const override { return newly_visited_; }
  bool dirty_rows(std::vector<std::uint32_t>& out) const override;

  const std::vector<std::int32_t>& depth() const noexcept { return depth_; }
  std::uint64_t visited_count() const noexcept { return visited_; }
  std::int32_t max_depth() const noexcept { return level_; }

 private:
  void visit(graph::vid_t v, std::int32_t next_level);

  graph::vid_t root_;
  bool symmetric_ = true;
  bool in_edges_ = false;
  unsigned tile_bits_ = 16;
  std::int32_t level_ = 0;
  std::uint64_t visited_ = 0;
  std::uint64_t newly_visited_ = 0;  // accumulated atomically during iteration
  std::vector<std::int32_t> depth_;
  std::vector<std::uint8_t> frontier_row_cur_;   // tile-row has depth==level
  std::vector<std::uint8_t> frontier_row_next_;  // tile-row gained depth==level+1
  std::vector<std::uint32_t> dirty_rows_;        // rows touched last round
};

}  // namespace gstore::algo
