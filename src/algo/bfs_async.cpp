#include "algo/bfs_async.h"

#include <algorithm>
#include <limits>

#include "algo/atomics.h"
#include "util/status.h"

namespace gstore::algo {

void TileBfsAsync::init(const tile::TileStore& store) {
  const auto& meta = store.meta();
  symmetric_ = meta.symmetric();
  in_edges_ = meta.in_edges();
  tile_bits_ = meta.tile_bits;
  GS_CHECK_MSG(root_ < store.vertex_count(), "BFS root out of range");

  depth_.assign(store.vertex_count(), kInf);
  active_row_cur_.assign(store.grid().p(), 0);
  active_row_next_.assign(store.grid().p(), 0);
  depth_[root_] = 0;
  active_row_cur_[root_ >> tile_bits_] = 1;
  passes_ = 0;
}

void TileBfsAsync::begin_iteration(std::uint32_t) { relaxed_ = 0; }

void TileBfsAsync::relax(graph::vid_t to, std::int32_t cand) {
  if (atomic_min(&depth_[to], cand)) {
    atomic_set_flag(&active_row_next_[to >> tile_bits_]);
    std::atomic_ref<std::uint64_t>(relaxed_).fetch_add(
        1, std::memory_order_relaxed);
  }
}

void TileBfsAsync::process_tile(const tile::TileView& view) {
  process_tile_blocked(view);
}

void TileBfsAsync::process_block(const tile::EdgeBlock& block) {
  const graph::vid_t* from = in_edges_ ? block.dst : block.src;
  const graph::vid_t* to = in_edges_ ? block.src : block.dst;
  block.prefetch_src(depth_.data());
  block.prefetch_dst(depth_.data());
  for (std::uint32_t k = 0; k < block.size; ++k) {
    // Freshest value, not an iteration snapshot — the "asynchronous" part.
    const std::int32_t df = atomic_load(&depth_[from[k]]);
    if (df != kInf) relax(to[k], df + 1);
    if (symmetric_) {
      const std::int32_t dt = atomic_load(&depth_[to[k]]);
      if (dt != kInf) relax(from[k], dt + 1);
    }
  }
}

bool TileBfsAsync::end_iteration(std::uint32_t) {
  ++passes_;
  active_row_cur_.swap(active_row_next_);
  std::fill(active_row_next_.begin(), active_row_next_.end(), 0);
  return relaxed_ > 0;
}

bool TileBfsAsync::tile_needed(std::uint32_t i, std::uint32_t j) const {
  if (active_row_cur_[in_edges_ ? j : i]) return true;
  return symmetric_ && active_row_cur_[j];
}

bool TileBfsAsync::tile_useful_next(std::uint32_t i, std::uint32_t j) const {
  if (active_row_next_[in_edges_ ? j : i]) return true;
  return symmetric_ && active_row_next_[j];
}

std::vector<std::int32_t> TileBfsAsync::depths() const {
  std::vector<std::int32_t> out(depth_.size());
  for (std::size_t v = 0; v < depth_.size(); ++v)
    out[v] = depth_[v] == kInf ? -1 : depth_[v];
  return out;
}

}  // namespace gstore::algo
