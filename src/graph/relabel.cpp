#include "graph/relabel.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"
#include "util/status.h"

namespace gstore::graph {

Permutation degree_order(const EdgeList& el) {
  const auto deg = el.degrees();
  std::vector<vid_t> by_degree(el.vertex_count());
  std::iota(by_degree.begin(), by_degree.end(), vid_t{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](vid_t a, vid_t b) { return deg[a] > deg[b]; });
  // by_degree[rank] = old id; invert into perm[old id] = rank.
  Permutation perm(el.vertex_count());
  for (vid_t rank = 0; rank < by_degree.size(); ++rank)
    perm[by_degree[rank]] = rank;
  return perm;
}

Permutation shuffle_order(vid_t vertex_count, std::uint64_t seed) {
  Permutation perm(vertex_count);
  std::iota(perm.begin(), perm.end(), vid_t{0});
  Xoshiro256 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

EdgeList apply_permutation(const EdgeList& el, const Permutation& perm) {
  GS_CHECK_MSG(perm.size() == el.vertex_count(),
               "permutation size must equal vertex count");
  std::vector<Edge> edges;
  edges.reserve(el.edge_count());
  for (const Edge& e : el.edges())
    edges.push_back(Edge{perm[e.src], perm[e.dst]});
  return EdgeList(std::move(edges), el.vertex_count(), el.kind());
}

}  // namespace gstore::graph
