// Compressed Sparse Row representation (paper §II-A, Figure 1c).
//
// Used by the FlashGraph-like baseline and by the in-memory reference
// algorithms that validate the tile engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace gstore::graph {

class Csr {
 public:
  Csr() = default;

  // Builds adjacency from an edge list. For undirected graphs each edge
  // appears in both endpoints' lists (the traditional, non-symmetric CSR
  // the paper compares against). For directed graphs `out_edges` selects
  // which direction is stored.
  static Csr build(const EdgeList& el, bool out_edges = true);

  vid_t vertex_count() const noexcept {
    return beg_pos_.empty() ? 0 : static_cast<vid_t>(beg_pos_.size() - 1);
  }
  std::uint64_t adjacency_size() const noexcept { return adj_.size(); }

  std::span<const vid_t> neighbors(vid_t v) const {
    return std::span<const vid_t>(adj_.data() + beg_pos_[v],
                                  beg_pos_[v + 1] - beg_pos_[v]);
  }
  degree_t degree(vid_t v) const noexcept {
    return static_cast<degree_t>(beg_pos_[v + 1] - beg_pos_[v]);
  }

  const std::vector<std::uint64_t>& beg_pos() const noexcept { return beg_pos_; }
  const std::vector<vid_t>& adj_list() const noexcept { return adj_; }

  // On-disk size of the CSR representation: |E| ids + |V|+1 offsets
  // (paper Table II column "CSR Size" — offsets stored as 8B, ids as 4B,
  // undirected edges stored twice).
  std::uint64_t storage_bytes() const noexcept {
    return adj_.size() * sizeof(vid_t) + beg_pos_.size() * sizeof(std::uint64_t);
  }

 private:
  std::vector<std::uint64_t> beg_pos_;  // size |V|+1
  std::vector<vid_t> adj_;              // size = stored edge slots
};

}  // namespace gstore::graph
