// Text graph loaders/savers for interoperability with common datasets
// (SNAP/KONECT-style edge lists — the distribution format of the paper's
// Twitter/Friendster/Subdomain graphs).
//
// Accepted line format: `src <whitespace> dst`, one edge per line; blank
// lines and lines starting with '#' or '%' (SNAP and MatrixMarket comment
// styles) are skipped. Vertex ids must be non-negative integers; the vertex
// count is max id + 1 unless a larger count is supplied.
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.h"

namespace gstore::graph {

struct TextReadOptions {
  GraphKind kind = GraphKind::kDirected;
  // Force a minimum vertex count (0 = infer from max id).
  vid_t min_vertex_count = 0;
  // Treat the optional third column as a weight and ignore it.
  bool allow_weights = true;
};

// Parses a whole text file; throws FormatError with a line number on
// malformed input.
EdgeList read_text_edges(const std::string& path, TextReadOptions options = {});

// Writes `src\tdst\n` lines (one per stored edge).
void write_text_edges(const std::string& path, const EdgeList& el);

// Parses edges from an in-memory string (exposed for tests and embedding).
EdgeList parse_text_edges(const std::string& text, TextReadOptions options = {});

}  // namespace gstore::graph
