// Synthetic graph generators.
//
// The paper evaluates on Graph500 Kronecker graphs (Kron-<scale>-<edgefactor>),
// R-MAT, and uniform random graphs, plus real social/web graphs. The real
// datasets are unavailable offline; skewed R-MAT stands in for them (see
// DESIGN.md §3). Deterministic structured graphs are provided for tests.
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace gstore::graph {

// R-MAT recursive quadrant probabilities. Graph500's Kronecker generator is
// R-MAT with (a,b,c) = (0.57, 0.19, 0.19).
struct RmatParams {
  double a = 0.57, b = 0.19, c = 0.19;
};

// Graph500 Kronecker graph: 2^scale vertices, edge_factor * 2^scale edges
// (before normalization). Matches the reference generator's quadrant
// recursion with per-level noise disabled for reproducibility.
EdgeList kronecker(unsigned scale, unsigned edge_factor, GraphKind kind,
                   std::uint64_t seed = 1, RmatParams params = {});

// Plain R-MAT with explicit quadrant probabilities. `scramble` applies a
// Graph500-style vertex-id permutation; disabling it preserves the id-space
// locality real social graphs exhibit (dense communities → skewed tiles).
EdgeList rmat(unsigned scale, unsigned edge_factor, GraphKind kind,
              RmatParams params, std::uint64_t seed = 1, bool scramble = true);

// Erdős–Rényi G(n, m): m uniform random edges over n vertices
// (the paper's "Random-27-32" configuration).
EdgeList uniform_random(vid_t n, std::uint64_t m, GraphKind kind,
                        std::uint64_t seed = 1);

// "Twitter-like" stand-in: heavily skewed R-MAT (see DESIGN.md). Directedness
// follows the paper (Twitter is used both directed and undirected).
EdgeList twitter_like(unsigned scale, unsigned edge_factor, GraphKind kind,
                      std::uint64_t seed = 7);

// ---- Deterministic graphs for tests ----

// 0-1-2-...-(n-1) path.
EdgeList path(vid_t n, GraphKind kind = GraphKind::kUndirected);
// Cycle over n vertices.
EdgeList cycle(vid_t n, GraphKind kind = GraphKind::kUndirected);
// Star: vertex 0 connected to all others.
EdgeList star(vid_t n, GraphKind kind = GraphKind::kUndirected);
// Complete graph K_n.
EdgeList complete(vid_t n, GraphKind kind = GraphKind::kUndirected);
// 2D grid of rows x cols vertices with 4-neighbour connectivity.
EdgeList grid(vid_t rows, vid_t cols, GraphKind kind = GraphKind::kUndirected);
// Two disjoint cliques of size n/2 (tests multi-component algorithms).
EdgeList two_cliques(vid_t n);

}  // namespace gstore::graph
