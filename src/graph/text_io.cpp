#include "graph/text_io.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "util/status.h"

namespace gstore::graph {

namespace {

// Parses one token as a vertex id; returns false at end of line.
bool parse_vid(const char*& p, const char* end, vid_t& out) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == ',')) ++p;
  if (p == end) return false;
  std::uint64_t value = 0;
  const auto [next, ec] = std::from_chars(p, end, value);
  if (ec != std::errc() || next == p) return false;
  if (value > 0xffffffffull) return false;
  p = next;
  out = static_cast<vid_t>(value);
  return true;
}

EdgeList parse_lines(std::istream& in, const TextReadOptions& options,
                     const std::string& origin) {
  std::vector<Edge> edges;
  vid_t max_id = 0;
  bool any_vertex = false;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const char* p = line.data();
    const char* end = p + line.size();
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (p == end || *p == '#' || *p == '%') continue;

    Edge e;
    if (!parse_vid(p, end, e.src) || !parse_vid(p, end, e.dst))
      throw FormatError(origin + ":" + std::to_string(line_no) +
                        ": expected `src dst` integers, got: " + line);
    // Optional trailing weight column.
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (p != end) {
      if (!options.allow_weights)
        throw FormatError(origin + ":" + std::to_string(line_no) +
                          ": unexpected trailing data: " + line);
      // Accept any remaining numeric token(s) (weights/timestamps); reject
      // non-numeric garbage so typos fail loudly.
      for (const char* q = p; q < end; ++q) {
        const char c = *q;
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
              c == '-' || c == '+' || c == 'e' || c == 'E' || c == ' ' ||
              c == '\t' || c == '\r'))
          throw FormatError(origin + ":" + std::to_string(line_no) +
                            ": unexpected trailing data: " + line);
      }
    }
    max_id = std::max({max_id, e.src, e.dst});
    any_vertex = true;
    edges.push_back(e);
  }
  vid_t n = any_vertex ? max_id + 1 : 0;
  n = std::max(n, options.min_vertex_count);
  if (n == 0) n = 1;  // an empty file still yields a valid 1-vertex graph
  return EdgeList(std::move(edges), n, options.kind);
}

}  // namespace

EdgeList read_text_edges(const std::string& path, TextReadOptions options) {
  std::ifstream in(path);
  if (!in) throw IoError("open " + path, ENOENT);
  return parse_lines(in, options, path);
}

EdgeList parse_text_edges(const std::string& text, TextReadOptions options) {
  std::istringstream in(text);
  return parse_lines(in, options, "<string>");
}

void write_text_edges(const std::string& path, const EdgeList& el) {
  std::ofstream out(path);
  if (!out) throw IoError("open " + path, EACCES);
  for (const Edge& e : el.edges()) out << e.src << '\t' << e.dst << '\n';
  out.flush();
  if (!out) throw IoError("write " + path, EIO);
}

}  // namespace gstore::graph
