#include "graph/generator.h"

#include <algorithm>

#include "util/rng.h"
#include "util/status.h"

namespace gstore::graph {

namespace {

// Draws one R-MAT edge by descending `scale` levels of the quadrant
// recursion.
Edge rmat_edge(Xoshiro256& rng, unsigned scale, const RmatParams& p) {
  vid_t src = 0, dst = 0;
  const double ab = p.a + p.b;
  const double abc = p.a + p.b + p.c;
  for (unsigned level = 0; level < scale; ++level) {
    const double r = rng.next_double();
    src <<= 1;
    dst <<= 1;
    if (r < p.a) {
      // top-left quadrant: no bits set
    } else if (r < ab) {
      dst |= 1;
    } else if (r < abc) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return Edge{src, dst};
}

// Graph500-style vertex scrambling: without it, Kronecker vertex 0 is the
// hottest vertex, which makes results degenerate. A fixed odd-multiplier
// hash permutation over [0, 2^scale) preserves reproducibility.
vid_t scramble(vid_t v, unsigned scale) {
  std::uint64_t x = v;
  x *= 0x9e3779b97f4a7c15ULL;
  x ^= x >> 32;
  x *= 0xc2b2ae3d27d4eb4fULL;
  return static_cast<vid_t>((x ^ (x >> 29)) & ((std::uint64_t{1} << scale) - 1));
}

}  // namespace

EdgeList rmat(unsigned scale, unsigned edge_factor, GraphKind kind,
              RmatParams params, std::uint64_t seed, bool scramble_ids) {
  GS_CHECK_MSG(scale >= 1 && scale <= 31, "rmat scale out of range [1,31]");
  const vid_t n = vid_t{1} << scale;
  const std::uint64_t m = static_cast<std::uint64_t>(edge_factor) << scale;
  Xoshiro256 rng(seed ^ (std::uint64_t{scale} << 32) ^ edge_factor);

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    Edge e = rmat_edge(rng, scale, params);
    if (scramble_ids) {
      e.src = scramble(e.src, scale);
      e.dst = scramble(e.dst, scale);
    }
    edges.push_back(e);
  }
  return EdgeList(std::move(edges), n, kind);
}

EdgeList kronecker(unsigned scale, unsigned edge_factor, GraphKind kind,
                   std::uint64_t seed, RmatParams params) {
  return rmat(scale, edge_factor, kind, params, seed ^ 0x4b726f6eULL /*"Kron"*/);
}

EdgeList uniform_random(vid_t n, std::uint64_t m, GraphKind kind,
                        std::uint64_t seed) {
  GS_CHECK_MSG(n >= 1, "need at least one vertex");
  Xoshiro256 rng(seed ^ 0x52616e64ULL /*"Rand"*/);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i)
    edges.push_back(Edge{static_cast<vid_t>(rng.next_below(n)),
                         static_cast<vid_t>(rng.next_below(n))});
  return EdgeList(std::move(edges), n, kind);
}

EdgeList twitter_like(unsigned scale, unsigned edge_factor, GraphKind kind,
                      std::uint64_t seed) {
  // Unscrambled R-MAT keeps id-space locality (dense communities near low
  // ids), reproducing the tile-occupancy skew the paper reports for Twitter:
  // ~40% empty tiles and a dominant giant tile (Fig 5). At (0.57,0.19,0.19)
  // and tile_bits=6/scale 12 we measure 40.3% empty — matching the paper.
  return rmat(scale, edge_factor, kind, RmatParams{0.57, 0.19, 0.19}, seed,
              /*scramble=*/false);
}

EdgeList path(vid_t n, GraphKind kind) {
  std::vector<Edge> edges;
  for (vid_t v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, v + 1});
  return EdgeList(std::move(edges), n, kind);
}

EdgeList cycle(vid_t n, GraphKind kind) {
  GS_CHECK_MSG(n >= 3, "cycle needs >= 3 vertices");
  std::vector<Edge> edges;
  for (vid_t v = 0; v < n; ++v) edges.push_back(Edge{v, (v + 1) % n});
  return EdgeList(std::move(edges), n, kind);
}

EdgeList star(vid_t n, GraphKind kind) {
  GS_CHECK_MSG(n >= 2, "star needs >= 2 vertices");
  std::vector<Edge> edges;
  for (vid_t v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return EdgeList(std::move(edges), n, kind);
}

EdgeList complete(vid_t n, GraphKind kind) {
  std::vector<Edge> edges;
  for (vid_t u = 0; u < n; ++u)
    for (vid_t v = (kind == GraphKind::kUndirected ? u + 1 : 0); v < n; ++v)
      if (u != v) edges.push_back(Edge{u, v});
  return EdgeList(std::move(edges), n, kind);
}

EdgeList grid(vid_t rows, vid_t cols, GraphKind kind) {
  GS_CHECK_MSG(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  std::vector<Edge> edges;
  auto id = [cols](vid_t r, vid_t c) { return r * cols + c; };
  for (vid_t r = 0; r < rows; ++r)
    for (vid_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(Edge{id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back(Edge{id(r, c), id(r + 1, c)});
    }
  return EdgeList(std::move(edges), rows * cols, kind);
}

EdgeList two_cliques(vid_t n) {
  GS_CHECK_MSG(n >= 4 && n % 2 == 0, "two_cliques needs even n >= 4");
  const vid_t half = n / 2;
  std::vector<Edge> edges;
  for (vid_t u = 0; u < half; ++u)
    for (vid_t v = u + 1; v < half; ++v) {
      edges.push_back(Edge{u, v});
      edges.push_back(Edge{u + half, v + half});
    }
  return EdgeList(std::move(edges), n, GraphKind::kUndirected);
}

}  // namespace gstore::graph
