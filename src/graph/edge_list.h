// In-memory edge list: the raw interchange format all converters start from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace gstore::graph {

class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(std::vector<Edge> edges, vid_t vertex_count, GraphKind kind);

  static EdgeList from_edges(std::vector<Edge> edges, GraphKind kind);

  const std::vector<Edge>& edges() const noexcept { return edges_; }
  std::vector<Edge>& mutable_edges() noexcept { return edges_; }
  std::span<const Edge> span() const noexcept { return edges_; }

  vid_t vertex_count() const noexcept { return vertex_count_; }
  std::uint64_t edge_count() const noexcept { return edges_.size(); }
  GraphKind kind() const noexcept { return kind_; }

  // Bytes the plain edge-list representation occupies on disk (paper
  // Table II column "Edge List Size"). Undirected graphs are charged for
  // both directions, matching how X-Stream stores them.
  std::uint64_t storage_bytes() const noexcept;

  // Removes self loops and (for undirected graphs) duplicate edges in
  // either orientation. Returns number of removed edges.
  std::uint64_t normalize();

  // Out-degree (directed) or total degree (undirected) per vertex.
  std::vector<degree_t> degrees() const;
  std::vector<degree_t> in_degrees() const;

  void set_vertex_count(vid_t n);

 private:
  std::vector<Edge> edges_;
  vid_t vertex_count_ = 0;
  GraphKind kind_ = GraphKind::kUndirected;
};

}  // namespace gstore::graph
