#include "graph/csr.h"

#include <numeric>

namespace gstore::graph {

Csr Csr::build(const EdgeList& el, bool out_edges) {
  const vid_t n = el.vertex_count();
  Csr csr;
  csr.beg_pos_.assign(static_cast<std::size_t>(n) + 1, 0);

  // Pass 1: counts.
  for (const Edge& e : el.edges()) {
    if (el.kind() == GraphKind::kUndirected) {
      ++csr.beg_pos_[e.src + 1];
      if (e.src != e.dst) ++csr.beg_pos_[e.dst + 1];
    } else {
      ++csr.beg_pos_[(out_edges ? e.src : e.dst) + 1];
    }
  }
  std::partial_sum(csr.beg_pos_.begin(), csr.beg_pos_.end(), csr.beg_pos_.begin());
  csr.adj_.resize(csr.beg_pos_.back());

  // Pass 2: fill (cursor per vertex).
  std::vector<std::uint64_t> cursor(csr.beg_pos_.begin(), csr.beg_pos_.end() - 1);
  for (const Edge& e : el.edges()) {
    if (el.kind() == GraphKind::kUndirected) {
      csr.adj_[cursor[e.src]++] = e.dst;
      if (e.src != e.dst) csr.adj_[cursor[e.dst]++] = e.src;
    } else if (out_edges) {
      csr.adj_[cursor[e.src]++] = e.dst;
    } else {
      csr.adj_[cursor[e.dst]++] = e.src;
    }
  }
  return csr;
}

}  // namespace gstore::graph
