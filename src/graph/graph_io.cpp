#include "graph/graph_io.h"

#include "io/file.h"
#include "util/status.h"

namespace gstore::graph {

void write_edge_file(const std::string& path, const EdgeList& el) {
  io::File f(path, io::OpenMode::kWrite);
  EdgeFileHeader h;
  h.kind = el.kind() == GraphKind::kDirected ? 1 : 0;
  h.vertex_count = el.vertex_count();
  h.edge_count = el.edge_count();
  f.append(&h, sizeof(h));
  if (!el.edges().empty())
    f.append(el.edges().data(), el.edges().size() * sizeof(Edge));
  f.sync();
}

EdgeFileHeader read_edge_file_header(const std::string& path) {
  io::File f(path, io::OpenMode::kRead);
  EdgeFileHeader h;
  f.pread_full(&h, sizeof(h), 0);
  if (h.magic != kEdgeFileMagic)
    throw FormatError("bad magic in edge file " + path);
  if (h.version != 1)
    throw FormatError("unsupported edge file version in " + path);
  const std::uint64_t expect = sizeof(EdgeFileHeader) + h.edge_count * sizeof(Edge);
  if (f.size() != expect)
    throw FormatError("edge file " + path + " truncated: have " +
                      std::to_string(f.size()) + " bytes, expected " +
                      std::to_string(expect));
  return h;
}

EdgeList read_edge_file(const std::string& path) {
  const EdgeFileHeader h = read_edge_file_header(path);
  io::File f(path, io::OpenMode::kRead);
  std::vector<Edge> edges(h.edge_count);
  if (h.edge_count > 0)
    f.pread_full(edges.data(), edges.size() * sizeof(Edge), sizeof(h));
  return EdgeList(std::move(edges), static_cast<vid_t>(h.vertex_count),
                  h.kind == 1 ? GraphKind::kDirected : GraphKind::kUndirected);
}

}  // namespace gstore::graph
