#include "graph/degree.h"

namespace gstore::graph {

CompressedDegrees CompressedDegrees::build(std::span<const degree_t> degrees) {
  CompressedDegrees out;

  std::size_t big = 0;
  for (degree_t d : degrees)
    if (d > kInlineMax) ++big;

  if (big > kMaxOverflow) {
    out.compressed_ = false;
    out.plain_.assign(degrees.begin(), degrees.end());
    return out;
  }

  out.inline_.resize(degrees.size());
  out.overflow_.reserve(big);
  for (std::size_t v = 0; v < degrees.size(); ++v) {
    const degree_t d = degrees[v];
    if (d <= kInlineMax) {
      out.inline_[v] = static_cast<std::uint16_t>(d);
    } else {
      out.inline_[v] = static_cast<std::uint16_t>(kOverflowFlag | out.overflow_.size());
      out.overflow_.push_back(d);
    }
  }
  return out;
}

}  // namespace gstore::graph
