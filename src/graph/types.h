// Core graph types shared across the library.
#pragma once

#include <cstdint>
#include <functional>

namespace gstore::graph {

// Vertex id. 2^32 vertices per graph is enough for the scales this machine
// can hold; the tile format itself (16-bit local ids + tile coordinates)
// extends beyond 2^32 without changing the edge-tuple size, which is the
// paper's point about Kron-33.
using vid_t = std::uint32_t;
using degree_t = std::uint32_t;
using weight_t = float;

inline constexpr vid_t kInvalidVid = ~vid_t{0};

// One directed edge tuple (src, dst); an undirected edge appears once in
// canonical (min, max) order inside the tile store.
struct Edge {
  vid_t src = 0;
  vid_t dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

struct WeightedEdge {
  vid_t src = 0;
  vid_t dst = 0;
  weight_t weight = 1.0f;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

static_assert(sizeof(Edge) == 8, "edge tuple must be 8 bytes (two 4B ids)");

enum class GraphKind { kUndirected, kDirected };

}  // namespace gstore::graph

template <>
struct std::hash<gstore::graph::Edge> {
  std::size_t operator()(const gstore::graph::Edge& e) const noexcept {
    const std::uint64_t v =
        (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
    // splitmix64 finalizer
    std::uint64_t z = v + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
