#include "graph/edge_list.h"

#include <algorithm>

#include "util/status.h"

namespace gstore::graph {

EdgeList::EdgeList(std::vector<Edge> edges, vid_t vertex_count, GraphKind kind)
    : edges_(std::move(edges)), vertex_count_(vertex_count), kind_(kind) {
  for (const Edge& e : edges_)
    GS_CHECK_MSG(e.src < vertex_count_ && e.dst < vertex_count_,
                 "edge endpoint out of range");
}

EdgeList EdgeList::from_edges(std::vector<Edge> edges, GraphKind kind) {
  vid_t n = 0;
  for (const Edge& e : edges) n = std::max({n, e.src + 1, e.dst + 1});
  return EdgeList(std::move(edges), n, kind);
}

std::uint64_t EdgeList::storage_bytes() const noexcept {
  const std::uint64_t tuples =
      kind_ == GraphKind::kUndirected ? 2 * edge_count() : edge_count();
  return tuples * sizeof(Edge);
}

std::uint64_t EdgeList::normalize() {
  const std::size_t before = edges_.size();
  // Drop self loops.
  std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
  if (kind_ == GraphKind::kUndirected) {
    // Canonicalize orientation, then dedupe.
    for (Edge& e : edges_)
      if (e.src > e.dst) std::swap(e.src, e.dst);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  return before - edges_.size();
}

std::vector<degree_t> EdgeList::degrees() const {
  std::vector<degree_t> deg(vertex_count_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.src];
    if (kind_ == GraphKind::kUndirected && e.src != e.dst) ++deg[e.dst];
  }
  return deg;
}

std::vector<degree_t> EdgeList::in_degrees() const {
  if (kind_ == GraphKind::kUndirected) return degrees();
  std::vector<degree_t> deg(vertex_count_, 0);
  for (const Edge& e : edges_) ++deg[e.dst];
  return deg;
}

void EdgeList::set_vertex_count(vid_t n) {
  for (const Edge& e : edges_)
    GS_CHECK_MSG(e.src < n && e.dst < n, "vertex_count below max endpoint");
  vertex_count_ = n;
}

}  // namespace gstore::graph
