// Vertex relabeling preprocessors.
//
// Tile occupancy — and therefore selective-fetch granularity and cache
// behaviour — depends entirely on the id assignment. Two standard
// relabelings are provided:
//   * by_degree   — hubs first: concentrates the power-law mass into the
//                   low-id tiles (what real social graph crawls look like,
//                   and what makes the paper's Fig 5 skew appear);
//   * shuffle     — random permutation: destroys locality (the Graph500
//                   scrambled-Kronecker look).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"

namespace gstore::graph {

// The permutation used: new_id = perm[old_id].
using Permutation = std::vector<vid_t>;

// Descending total degree; ties by original id (stable, deterministic).
Permutation degree_order(const EdgeList& el);

// Deterministic pseudo-random permutation for a seed.
Permutation shuffle_order(vid_t vertex_count, std::uint64_t seed);

// Applies a permutation, returning the rewritten edge list.
EdgeList apply_permutation(const EdgeList& el, const Permutation& perm);

// Convenience: relabel hubs-first.
inline EdgeList relabel_by_degree(const EdgeList& el) {
  return apply_permutation(el, degree_order(el));
}

}  // namespace gstore::graph
