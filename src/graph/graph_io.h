// Binary edge-list files.
//
// Format: a small header (magic, version, kind, vertex count, edge count)
// followed by raw Edge tuples. This is the on-disk input format for every
// converter and for the X-Stream-like baseline, which streams it directly.
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.h"

namespace gstore::graph {

inline constexpr std::uint64_t kEdgeFileMagic = 0x4753544f52454c31ULL;  // "GSTOREL1"

struct EdgeFileHeader {
  std::uint64_t magic = kEdgeFileMagic;
  std::uint32_t version = 1;
  std::uint32_t kind = 0;  // 0 undirected, 1 directed
  std::uint64_t vertex_count = 0;
  std::uint64_t edge_count = 0;
  std::uint64_t reserved[4] = {0, 0, 0, 0};
};
static_assert(sizeof(EdgeFileHeader) == 64);

// Writes the edge list; throws IoError on failure.
void write_edge_file(const std::string& path, const EdgeList& el);

// Reads the whole file back; validates the header.
EdgeList read_edge_file(const std::string& path);

// Reads only the header (to size buffers before streaming).
EdgeFileHeader read_edge_file_header(const std::string& path);

// Offset of the first edge tuple in the file.
inline constexpr std::uint64_t edge_file_data_offset() {
  return sizeof(EdgeFileHeader);
}

}  // namespace gstore::graph
