// Compressed degree array (paper §IV-C "Additional Storage Saving on
// Degrees").
//
// Power-law graphs have mostly tiny degrees: entries are 2 bytes with the
// MSB clear for degrees ≤ 32767. Vertices exceeding that get the MSB set
// and the low 15 bits index an overflow table of 4-byte degrees. The
// optimization applies only while the overflow table stays under 2^15
// entries; build() reports whether compression was possible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace gstore::graph {

class CompressedDegrees {
 public:
  static constexpr degree_t kInlineMax = 0x7fff;     // 32767
  static constexpr std::uint16_t kOverflowFlag = 0x8000;
  static constexpr std::size_t kMaxOverflow = 0x8000;  // 2^15 index space

  CompressedDegrees() = default;

  // Builds from plain degrees. If more than kMaxOverflow vertices exceed
  // kInlineMax the format cannot compress: falls back to a plain 4-byte
  // array internally (compressed() == false), so callers never lose data.
  static CompressedDegrees build(std::span<const degree_t> degrees);

  degree_t operator[](vid_t v) const {
    if (!compressed_) return plain_[v];
    const std::uint16_t raw = inline_[v];
    return (raw & kOverflowFlag) ? overflow_[raw & kInlineMax] : raw;
  }

  vid_t size() const noexcept {
    return static_cast<vid_t>(compressed_ ? inline_.size() : plain_.size());
  }
  bool compressed() const noexcept { return compressed_; }
  std::size_t overflow_count() const noexcept { return overflow_.size(); }

  // Bytes this representation occupies (paper quotes 4GB → 2GB for
  // Kron-30-16).
  std::uint64_t storage_bytes() const noexcept {
    return compressed_ ? inline_.size() * sizeof(std::uint16_t) +
                             overflow_.size() * sizeof(degree_t)
                       : plain_.size() * sizeof(degree_t);
  }

 private:
  bool compressed_ = true;
  std::vector<std::uint16_t> inline_;
  std::vector<degree_t> overflow_;
  std::vector<degree_t> plain_;
};

}  // namespace gstore::graph
