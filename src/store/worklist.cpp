#include "store/worklist.h"

#include <algorithm>

#include "util/dcheck.h"

namespace gstore::store {

void TileWorklist::reset(std::uint64_t tile_count) {
  prio_.assign(tile_count, kIdle);
  buckets_.clear();
  live_ = 0;
  cursor_ = 0;
}

void TileWorklist::push(std::uint64_t layout_idx, std::uint32_t priority) {
  GSTORE_DCHECK_LT(layout_idx, prio_.size());
  if (priority == kIdle) {
    deactivate(layout_idx);
    return;
  }
  const std::uint32_t p = std::min(priority, kMaxBucket);
  const std::uint32_t old = prio_[layout_idx];
  if (old == p) return;  // already filed there
  if (old == kIdle) ++live_;
  prio_[layout_idx] = p;  // the entry in bucket `old` (if any) goes stale
  if (p >= buckets_.size()) buckets_.resize(p + 1);
  buckets_[p].push_back(layout_idx);
  cursor_ = std::min(cursor_, p);
}

void TileWorklist::deactivate(std::uint64_t layout_idx) {
  GSTORE_DCHECK_LT(layout_idx, prio_.size());
  if (prio_[layout_idx] == kIdle) return;
  prio_[layout_idx] = kIdle;  // bucket entry goes stale
  GSTORE_DCHECK_GT(live_, 0);
  --live_;
}

std::uint32_t TileWorklist::drain_min(std::vector<std::uint64_t>& out) {
  out.clear();
  if (live_ == 0) return kIdle;
  while (cursor_ < buckets_.size()) {
    std::vector<std::uint64_t>& b = buckets_[cursor_];
    for (const std::uint64_t idx : b) {
      // Stale entries (re-filed or deactivated since they were appended)
      // no longer match the authoritative priority.
      if (prio_[idx] != cursor_) continue;
      prio_[idx] = kIdle;
      out.push_back(idx);
    }
    b.clear();
    if (!out.empty()) {
      live_ -= out.size();
      // Appends arrive in push order, which refiling scrambles; the engine
      // wants ascending layout order for coalesced sequential reads.
      std::sort(out.begin(), out.end());
      return cursor_;
    }
    ++cursor_;
  }
  GSTORE_DCHECK_EQ(live_, 0);  // unreachable with a consistent live_ count
  live_ = 0;
  return kIdle;
}

}  // namespace gstore::store
