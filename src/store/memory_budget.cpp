#include "store/memory_budget.h"

#include "util/status.h"

namespace gstore::store {

MemoryBudget MemoryBudget::compute(std::uint64_t stream_bytes,
                                   std::uint64_t segment_bytes) {
  GS_CHECK_MSG(stream_bytes > 0, "stream memory must be positive");
  GS_CHECK_MSG(segment_bytes > 0, "segment size must be positive");
  MemoryBudget b;
  b.stream_bytes = stream_bytes;
  if (2 * segment_bytes > stream_bytes) {
    b.segment_bytes = stream_bytes / 2;
    if (b.segment_bytes == 0) b.segment_bytes = 1;
    b.pool_bytes = 0;
  } else {
    b.segment_bytes = segment_bytes;
    b.pool_bytes = stream_bytes - 2 * segment_bytes;
  }
  return b;
}

}  // namespace gstore::store
