// Splits the streaming memory between the two I/O segments and the cache
// pool (paper §VI-A: "available memory for graph data is dedicated for two
// fixed sized chunks called segment … the rest of the memory is allocated
// to the cache pool").
#pragma once

#include <cstdint>

namespace gstore::store {

struct MemoryBudget {
  std::uint64_t stream_bytes = 0;   // total memory for streaming + caching
  std::uint64_t segment_bytes = 0;  // per segment (two segments)
  std::uint64_t pool_bytes = 0;     // remainder

  // Validates and derives the split. If two segments would exceed the
  // stream budget, segments shrink to half the budget each and the pool is
  // empty (the paper's "base policy" configuration).
  static MemoryBudget compute(std::uint64_t stream_bytes,
                              std::uint64_t segment_bytes);
};

}  // namespace gstore::store
