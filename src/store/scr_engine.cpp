#include "store/scr_engine.h"

#include <algorithm>
#include <exception>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/cache_pool.h"
#include "store/chunking.h"
#include "store/segment.h"
#include "store/worklist.h"
#include "tile/overlay.h"
#include "util/dcheck.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gstore::store {

namespace {
// Tags encode which segment a read belongs to so completions can be
// attributed while both segments have I/O in flight.
constexpr std::uint64_t make_tag(int segment, std::uint64_t serial) {
  GSTORE_DCHECK(segment == 0 || segment == 1);
  GSTORE_DCHECK_LT(serial, 1ull << 56);
  return (static_cast<std::uint64_t>(segment) << 56) | serial;
}
constexpr int tag_segment(std::uint64_t tag) {
  return static_cast<int>(tag >> 56);
}
}  // namespace

struct ScrEngine::Runner {
  Runner(tile::TileStore& store, const EngineConfig& config,
         const MemoryBudget& budget, TileAlgorithm& algo)
      : store(store),
        grid(store.grid()),
        config(config),
        algo(algo),
        pool(budget.pool_bytes),
        policy(CachingPolicy::make(config.policy)),
        overlay(store.overlay()) {
    const std::uint64_t cap =
        std::max<std::uint64_t>(budget.segment_bytes, store.max_tile_bytes());
    segments[0] = Segment(cap);
    segments[1] = Segment(cap);
    // The overlay is frozen for the duration of a run (reader/writer
    // contract in tile/overlay.h), so its tile list can be taken once.
    if (overlay != nullptr) overlay_tiles = overlay->nonempty_tiles();
  }

  // ---- helpers -----------------------------------------------------------

  bool needed_now(std::uint64_t layout_idx) const {
    if (!config.selective_fetch) return true;
    const tile::TileCoord c = grid.coord_at(layout_idx);
    return algo.tile_needed(c.i, c.j);
  }

  std::uint32_t priority_of(std::uint64_t layout_idx) const {
    const tile::TileCoord c = grid.coord_at(layout_idx);
    return algo.tile_priority(c.i, c.j);
  }

  std::uint64_t overlay_count(std::uint64_t layout_idx) const {
    return overlay == nullptr ? 0 : overlay->tile_edges(layout_idx).size();
  }

  void process_one(std::uint64_t layout_idx, const std::uint8_t* data) {
    const tile::TileView v = store.view(layout_idx, data);
    algo.process_tile(v);
    if (overlay == nullptr) return;
    // Splice the overlay's un-compacted tuples into the scan as a second
    // view of the same tile: same coordinates, same SNB bases, extra edges.
    const std::span<const tile::SnbEdge> extra = overlay->tile_edges(layout_idx);
    if (extra.empty()) return;
    // splice_view resets the representation to raw in-memory SNB tuples —
    // overlays exist only for SNB stores, whatever codec the base tile used.
    algo.process_tile(tile::splice_view(v, extra));
  }

  // An exception cannot unwind through an OpenMP region (the runtime would
  // terminate the process), and since v3 the decode inside process_one can
  // throw FormatError on a corrupt payload — as can the algorithm itself.
  // Workers capture the first exception here; the orchestrating thread
  // rethrows after the region joins (REWIND and the delta pass have no I/O
  // in flight, and the SLIDE call sits inside the quiesce-before-throw
  // frame in run_iteration).
  std::exception_ptr scan_error;

  void process_one_captured(std::uint64_t layout_idx,
                            const std::uint8_t* data) noexcept {
    try {
      process_one(layout_idx, data);
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical(gstore_scr_scan_error)
#endif
      if (scan_error == nullptr) scan_error = std::current_exception();
    }
  }

  void rethrow_scan_error() {
    if (scan_error == nullptr) return;
    std::exception_ptr e = std::exchange(scan_error, nullptr);
    std::rethrow_exception(e);
  }

  // Greedily packs tiles from fetch[pos..] into `seg` and submits the reads
  // as one batched call (coalescing contiguous tiles into single requests).
  // Returns the number of read requests in flight for this segment.
  std::size_t fill_and_submit(int s, const std::vector<std::uint64_t>& fetch,
                              std::size_t& pos) {
    Segment& seg = segments[s];
    if (pos >= fetch.size()) {
      seg.clear();  // nothing will be written — pinned bytes stay untouched
      return 0;
    }
    // begin_fill, not clear: if the pool still pins slices of this buffer a
    // fresh one is allocated, so the cached bytes stay immutable (zero-copy
    // contract; the old buffer is freed when its last pin drops).
    seg.begin_fill();

    // An oversized first tile grows the segment (tiles are never split:
    // "we do not fetch, process or cache partial data from any tile").
    seg.ensure_capacity(store.tile_bytes(fetch[pos]));
    while (pos < fetch.size() &&
           seg.try_add(fetch[pos], store.tile_bytes(fetch[pos])))
      ++pos;

    // Coalesce runs of layout-consecutive tiles: their bytes are contiguous
    // in the file and in the segment buffer by construction.
    std::vector<io::ReadRequest> batch;
    const auto& slots = seg.slots();
    std::size_t run_begin = 0;
    auto flush_run = [&](std::size_t run_end) {
      const TileSlot& first = slots[run_begin];
      const TileSlot& last = slots[run_end - 1];
      io::ReadRequest req;
      req.offset = store.tile_offset(first.layout_idx);
      req.length = static_cast<std::size_t>(last.offset + last.bytes - first.offset);
      req.buffer = seg.slot_data(first);
      req.tag = make_tag(s, next_serial++);
      batch.push_back(req);
      run_begin = run_end;
    };
    for (std::size_t k = 1; k < slots.size(); ++k) {
      // Segment packing invariant: slot bytes are laid out back-to-back, so
      // a layout-consecutive run is contiguous in buffer and file alike.
      GSTORE_DCHECK_EQ(slots[k].offset, slots[k - 1].offset + slots[k - 1].bytes);
      if (slots[k].layout_idx != slots[k - 1].layout_idx + 1) flush_run(k);
    }
    if (!slots.empty()) flush_run(slots.size());

    stats.tiles_from_disk += slots.size();
    for (const auto& slot : slots) bytes_fetched_total += slot.bytes;
    for (auto& req : batch) req.priority = fetch_priority;
    if (batch.empty()) return 0;
    ++stats.io_batches;
    if (config.overlap_io) {
      const std::size_t n_requests = batch.size();
      // Remember every request so a failed or truncated completion can be
      // resubmitted (or reported with its offset) from wait_segment.
      for (const auto& req : batch)
        inflight.emplace(req.tag, InFlightRead{req, 0});
      store.device().submit(std::move(batch));
      return n_requests;
    }
    // Synchronous mode: read inline.
    Timer t;
    for (const auto& req : batch)
      store.device().read(req.buffer, req.length, req.offset);
    stats.io_wait_seconds += t.seconds();
    return 0;
  }

  // Waits until all in-flight requests for segment s have completed.
  //
  // Failure handling (the recovery layer above the async engine's own
  // per-read retries): a failed completion — or a short one, which means
  // the async engine already pursued the tail to EOF and the tile file is
  // genuinely truncated — is never processed as a full tile. The whole
  // request is resubmitted up to config.read_retry_budget times; past the
  // budget it is recorded and the iteration fails via fail_iteration(),
  // which drains *both* segments' in-flight reads before the exception
  // escapes (the I/O workers write into buffers this Runner owns, so
  // unwinding under them would be a use-after-free).
  void wait_segment(int s) {
    Timer t;
    while (pending[s] > 0) {
      completions_scratch.clear();
      store.device().poll(1, 64, completions_scratch);
      for (const io::Completion& c : completions_scratch)
        handle_completion(c);
    }
    stats.io_wait_seconds += t.seconds();
    if (!read_failures.empty()) fail_iteration();
  }

  void handle_completion(const io::Completion& c) {
    const int seg = tag_segment(c.tag);
    GSTORE_DCHECK(seg == 0 || seg == 1);
    GSTORE_DCHECK_GT(pending[seg], 0);
    --pending[seg];
    const auto it = inflight.find(c.tag);
    GSTORE_DCHECK(it != inflight.end());
    if (it == inflight.end()) return;  // untracked (sync-mode leftovers)
    InFlightRead& r = it->second;
    if (c.ok && c.bytes == r.req.length) {
      inflight.erase(it);
      return;
    }
    if (r.attempts < config.read_retry_budget) {
      ++r.attempts;
      ++stats.tile_resubmits;
      std::vector<io::ReadRequest> one{r.req};
      store.device().submit(std::move(one));
      ++pending[seg];
      return;
    }
    const std::string why =
        !c.ok ? (c.message.empty() ? "read failed" : c.message)
              : ("truncated read: " + std::to_string(c.bytes) + "/" +
                 std::to_string(r.req.length) + " bytes");
    read_failures.push_back("tile read at offset " +
                            std::to_string(r.req.offset) + " (tag " +
                            std::to_string(c.tag) + "): " + why);
    inflight.erase(it);
  }

  // Aborts the iteration with one IoError naming every tile read that
  // exhausted its budget. Quiesces first: no exception may escape while
  // the async workers can still write into the segment buffers.
  [[noreturn]] void fail_iteration() {
    quiesce_all();
    std::string msg = "iteration aborted: " +
                      std::to_string(read_failures.size()) +
                      " tile read(s) failed past the retry budget";
    for (const auto& f : read_failures) msg += "; " + f;
    read_failures.clear();
    throw IoError(msg, EIO);
  }

  // Unwind-path barrier: waits out every in-flight read for both segments
  // without throwing, then resets the double-buffer bookkeeping.
  void quiesce_all() noexcept {
    store.device().quiesce();
    pending[0] = pending[1] = 0;
    inflight.clear();
  }

  // Processes every tile resident in segment s (in parallel), then offers
  // the tiles to the cache pool under the policy.
  void process_segment(int s) {
    Segment& seg = segments[s];
    const auto& slots = seg.slots();
    Timer t;
    slot_costs.clear();
    slot_costs.reserve(slots.size());
    for (const auto& slot : slots)
      slot_costs.push_back(store.tile_edge_count(slot.layout_idx) +
                           overlay_count(slot.layout_idx));
    cost_chunks(slot_costs, chunks);
    std::uint64_t edges = 0;
    std::uint64_t oedges = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) reduction(+ : edges, oedges)
#endif
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      for (std::size_t k = chunks[c].begin; k < chunks[c].end; ++k) {
        process_one_captured(slots[k].layout_idx, seg.slot_data(slots[k]));
        edges += slot_costs[k];
        oedges += overlay_count(slots[k].layout_idx);
      }
    }
    rethrow_scan_error();  // before pinning possibly-corrupt tiles below
    stats.edges_processed += edges;
    stats.overlay_edges += oedges;
    stats.compute_seconds += t.seconds();

    // CACHE step of slide-cache-rewind: pin refcounted slices of the segment
    // buffer instead of copying tile bytes into the pool.
    if (pool.budget() == 0) return;
    for (const auto& slot : slots) {
      const tile::TileCoord c = grid.coord_at(slot.layout_idx);
      if (!policy->should_cache(slot.layout_idx, c, algo)) continue;
      if (slot.bytes > pool.free_bytes() &&
          !policy->make_room(pool, slot.bytes, grid, algo))
        continue;
      pool.insert_pinned(slot.layout_idx, seg.pin_slot(slot), slot.bytes);
    }
  }

  // ---- one iteration -----------------------------------------------------

  // Returns true if the algorithm wants another iteration.
  bool run_iteration(std::uint32_t iter) {
    const Timer iter_timer;
    const IterationStats before{stats.tiles_from_disk, stats.tiles_from_cache,
                                stats.tiles_skipped, stats.edges_processed,
                                bytes_fetched_total};
    algo.begin_iteration(iter);

    // REWIND: consume the cache pool first, no I/O (paper §VI-D).
    std::vector<std::uint64_t> cached_indices;
    if (config.rewind && pool.tile_count() > 0) {
      Timer t;
      // Allocation-free snapshot into reused scratch. The fetch list must
      // exclude *every* cached tile (needed or not), so indices are taken
      // before filtering; needed_now consults algorithm metadata, so it runs
      // outside the pool lock.
      rewind_entries.clear();
      pool.for_each_entry(
          [&](const CachePool::Entry& e) { rewind_entries.push_back(e); });
      cached_indices.reserve(rewind_entries.size());
      for (const auto& e : rewind_entries)
        cached_indices.push_back(e.layout_idx);
      std::erase_if(rewind_entries, [&](const CachePool::Entry& e) {
        return !needed_now(e.layout_idx);
      });
      slot_costs.clear();
      slot_costs.reserve(rewind_entries.size());
      for (const auto& e : rewind_entries)
        slot_costs.push_back(store.tile_edge_count(e.layout_idx) +
                             overlay_count(e.layout_idx));
      cost_chunks(slot_costs, chunks);
      std::uint64_t edges = 0;
      std::uint64_t oedges = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) reduction(+ : edges, oedges)
#endif
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        for (std::size_t k = chunks[c].begin; k < chunks[c].end; ++k) {
          process_one_captured(rewind_entries[k].layout_idx,
                               rewind_entries[k].data);
          edges += slot_costs[k];
          oedges += overlay_count(rewind_entries[k].layout_idx);
        }
      }
      rethrow_scan_error();
      for (const auto& e : rewind_entries) pool.touch(e.layout_idx);
      stats.tiles_from_cache += rewind_entries.size();
      stats.edges_processed += edges;
      stats.overlay_edges += oedges;
      stats.compute_seconds += t.seconds();
    } else if (!config.rewind) {
      // Base policy keeps nothing across iterations.
      pool.clear();
    }

    // Fetch list: every stored, non-empty tile not already consumed from the
    // cache, that the algorithm needs this iteration — in layout order.
    std::vector<std::uint64_t> fetch;
    {
      std::size_t ci = 0;
      for (std::uint64_t idx = 0; idx < grid.tile_count(); ++idx) {
        while (ci < cached_indices.size() && cached_indices[ci] < idx) ++ci;
        const bool in_cache =
            ci < cached_indices.size() && cached_indices[ci] == idx;
        if (in_cache) continue;
        if (store.tile_bytes(idx) == 0) continue;
        if (!needed_now(idx)) {
          ++stats.tiles_skipped;
          continue;
        }
        fetch.push_back(idx);
      }
    }

    // SLIDE: double-buffered stream over the fetch list. Any exception —
    // an I/O failure past the retry budget, or one thrown by the algorithm
    // itself — must not unwind past this frame while reads are still in
    // flight into the segment buffers, so the whole phase quiesces before
    // propagating.
    std::size_t pos = 0;
    int cur = 0;
    pending[0] = pending[1] = 0;
    try {
      pending[cur] = fill_and_submit(cur, fetch, pos);
      while (!segments[cur].empty()) {
        const int nxt = cur ^ 1;
        // Double-buffer state machine: the segment about to prefetch must be
        // quiescent (its previous I/O reaped, its tiles processed).
        GSTORE_DCHECK_EQ(pending[nxt], 0);
        pending[nxt] = fill_and_submit(nxt, fetch, pos);  // prefetch
        wait_segment(cur);
        process_segment(cur);
        cur = nxt;
      }
    } catch (...) {
      quiesce_all();
      throw;
    }
    // SLIDE consumed the whole fetch list and reaped every read.
    GSTORE_DCHECK_EQ(pos, fetch.size());
    GSTORE_DCHECK_EQ(pending[0], 0);
    GSTORE_DCHECK_EQ(pending[1], 0);

    // Overlay tiles with no base bytes are invisible to the fetch list (and
    // never enter the cache), so they get their own no-I/O pass.
    if (overlay != nullptr) {
      Timer t;
      std::vector<std::uint64_t> delta_only;
      for (const std::uint64_t idx : overlay_tiles) {
        if (store.tile_bytes(idx) != 0) continue;  // spliced in during SLIDE/REWIND
        if (!needed_now(idx)) continue;
        delta_only.push_back(idx);
      }
      slot_costs.clear();
      slot_costs.reserve(delta_only.size());
      for (const std::uint64_t idx : delta_only)
        slot_costs.push_back(overlay_count(idx));
      cost_chunks(slot_costs, chunks);
      std::uint64_t oedges = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) reduction(+ : oedges)
#endif
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        for (std::size_t k = chunks[c].begin; k < chunks[c].end; ++k) {
          process_one_captured(delta_only[k], nullptr);
          oedges += slot_costs[k];
        }
      }
      rethrow_scan_error();
      stats.edges_processed += oedges;
      stats.overlay_edges += oedges;
      stats.compute_seconds += t.seconds();
    }

    // Iteration-boundary cache analysis. Runs *before* end_iteration(): the
    // tile_useful_next oracle refers to the upcoming iteration, and
    // end_iteration typically promotes next-iteration metadata (e.g. BFS
    // frontier flags) to current.
    if (pool.budget() > 0) policy->analyze(pool, grid, algo);

    const bool more = algo.end_iteration(iter);
    const std::uint64_t fetched = bytes_fetched_total - before.bytes_fetched;
    // last_round_updates() holds the iteration's update count until the next
    // begin hook resets it, so it is still valid here.
    if (algo.last_round_updates() == 0) stats.wasted_fetch_bytes += fetched;
    stats.per_iteration.push_back(IterationStats{
        stats.tiles_from_disk - before.tiles_from_disk,
        stats.tiles_from_cache - before.tiles_from_cache,
        stats.tiles_skipped - before.tiles_skipped,
        stats.edges_processed - before.edges_processed, fetched,
        IterationStats::kNoBucket, iter_timer.seconds()});
    return more;
  }

  // ---- priority mode (docs/SCHEDULING.md) --------------------------------

  // Registers every tile carrying data (base bytes or overlay edges) under
  // both of its tile rows, so a dirty row maps back to the tiles whose
  // priority it can change. Both rows, not just the algorithm's source row:
  // tile_priority(i,j) may consult either range (symmetric stores do), and
  // over-approximating costs one oracle call per refresh, never correctness.
  void build_row_tiles() {
    row_tiles.assign(grid.p(), {});
    row_mark.assign(grid.p(), 0);
    for (std::uint64_t idx = 0; idx < grid.tile_count(); ++idx) {
      if (store.tile_bytes(idx) == 0 && overlay_count(idx) == 0) continue;
      const tile::TileCoord c = grid.coord_at(idx);
      row_tiles[c.i].push_back(idx);
      if (c.j != c.i) row_tiles[c.j].push_back(idx);
    }
  }

  // Re-files one tile under its current oracle priority (kPriorityIdle
  // unfiles it).
  void refresh_tile(std::uint64_t layout_idx) {
    worklist.push(layout_idx, priority_of(layout_idx));
  }

  void seed_worklist_full() {
    for (std::uint64_t idx = 0; idx < grid.tile_count(); ++idx) {
      if (store.tile_bytes(idx) == 0 && overlay_count(idx) == 0) continue;
      refresh_tile(idx);
    }
  }

  // Re-evaluates only the tiles touching `rows` (deduplicated via row_mark).
  void refresh_rows(const std::vector<std::uint32_t>& rows) {
    for (const std::uint32_t r : rows) {
      GSTORE_DCHECK_LT(r, row_tiles.size());
      if (r >= row_tiles.size() || row_mark[r]) continue;
      row_mark[r] = 1;
      for (const std::uint64_t idx : row_tiles[r]) refresh_tile(idx);
    }
    for (const std::uint32_t r : rows)
      if (r < row_mark.size()) row_mark[r] = 0;
  }

  // One worklist round: drain the minimum bucket, process its cached tiles
  // first (no I/O), SLIDE the rest from disk at the bucket's fetch priority,
  // then splice delta-only overlay tiles. Returns end_round()'s verdict.
  bool run_round(std::uint32_t round) {
    const Timer round_timer;
    const IterationStats before{stats.tiles_from_disk, stats.tiles_from_cache,
                                stats.tiles_skipped, stats.edges_processed,
                                bytes_fetched_total};
    const std::uint32_t bucket = worklist.drain_min(round_tiles);
    GSTORE_DCHECK(bucket != TileWorklist::kIdle);
    algo.begin_round(round, bucket);
    stats.max_bucket = std::max(stats.max_bucket, bucket);
    fetch_priority = bucket;

    // Partition the round: tiles already in the pool are processed in place
    // (the REWIND idea applied per round), the rest are streamed. Overlay
    // tiles with no base bytes never hit the fetch path.
    round_fetch.clear();
    round_delta_only.clear();
    rewind_entries.clear();
    if (config.rewind && pool.tile_count() > 0) {
      pool.for_each_entry(
          [&](const CachePool::Entry& e) { rewind_entries.push_back(e); });
    } else if (!config.rewind) {
      pool.clear();  // base policy keeps nothing across rounds
    }
    {
      // Both lists are ascending in layout index (pool iterates its sorted
      // map; drain_min sorts), so one merge pass splits the round.
      std::size_t ci = 0;
      std::vector<CachePool::Entry> cached;
      for (const std::uint64_t idx : round_tiles) {
        while (ci < rewind_entries.size() &&
               rewind_entries[ci].layout_idx < idx)
          ++ci;
        if (ci < rewind_entries.size() &&
            rewind_entries[ci].layout_idx == idx) {
          cached.push_back(rewind_entries[ci]);
          continue;
        }
        if (store.tile_bytes(idx) != 0)
          round_fetch.push_back(idx);
        else if (overlay_count(idx) != 0)
          round_delta_only.push_back(idx);
      }
      rewind_entries.swap(cached);
    }

    // Cached tiles first — dispatch before any I/O is issued.
    if (!rewind_entries.empty()) {
      Timer t;
      slot_costs.clear();
      slot_costs.reserve(rewind_entries.size());
      for (const auto& e : rewind_entries)
        slot_costs.push_back(store.tile_edge_count(e.layout_idx) +
                             overlay_count(e.layout_idx));
      cost_chunks(slot_costs, chunks);
      std::uint64_t edges = 0;
      std::uint64_t oedges = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) reduction(+ : edges, oedges)
#endif
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        for (std::size_t k = chunks[c].begin; k < chunks[c].end; ++k) {
          process_one_captured(rewind_entries[k].layout_idx,
                               rewind_entries[k].data);
          edges += slot_costs[k];
          oedges += overlay_count(rewind_entries[k].layout_idx);
        }
      }
      rethrow_scan_error();
      for (const auto& e : rewind_entries) pool.touch(e.layout_idx);
      stats.tiles_from_cache += rewind_entries.size();
      stats.edges_processed += edges;
      stats.overlay_edges += oedges;
      stats.compute_seconds += t.seconds();
    }

    // SLIDE over the round's fetch list (same quiesce-before-throw frame as
    // the grid path: nothing may unwind while reads are in flight).
    std::size_t pos = 0;
    int cur = 0;
    pending[0] = pending[1] = 0;
    try {
      pending[cur] = fill_and_submit(cur, round_fetch, pos);
      while (!segments[cur].empty()) {
        const int nxt = cur ^ 1;
        GSTORE_DCHECK_EQ(pending[nxt], 0);
        pending[nxt] = fill_and_submit(nxt, round_fetch, pos);
        wait_segment(cur);
        process_segment(cur);
        cur = nxt;
      }
    } catch (...) {
      quiesce_all();
      throw;
    }
    GSTORE_DCHECK_EQ(pos, round_fetch.size());
    GSTORE_DCHECK_EQ(pending[0], 0);
    GSTORE_DCHECK_EQ(pending[1], 0);

    if (!round_delta_only.empty()) {
      Timer t;
      slot_costs.clear();
      slot_costs.reserve(round_delta_only.size());
      for (const std::uint64_t idx : round_delta_only)
        slot_costs.push_back(overlay_count(idx));
      cost_chunks(slot_costs, chunks);
      std::uint64_t oedges = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) reduction(+ : oedges)
#endif
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        for (std::size_t k = chunks[c].begin; k < chunks[c].end; ++k) {
          process_one_captured(round_delta_only[k], nullptr);
          oedges += slot_costs[k];
        }
      }
      rethrow_scan_error();
      stats.edges_processed += oedges;
      stats.overlay_edges += oedges;
      stats.compute_seconds += t.seconds();
    }

    // Round-boundary cache analysis, before end_round for the same reason
    // the grid path runs it before end_iteration (tile_useful_next refers
    // to upcoming work; end_round promotes next-state metadata).
    if (pool.budget() > 0) policy->analyze(pool, grid, algo);

    const bool more = algo.end_round(round, bucket);
    const std::uint64_t fetched = bytes_fetched_total - before.bytes_fetched;
    if (algo.last_round_updates() == 0) stats.wasted_fetch_bytes += fetched;
    stats.per_iteration.push_back(IterationStats{
        stats.tiles_from_disk - before.tiles_from_disk,
        stats.tiles_from_cache - before.tiles_from_cache,
        0,  // priority mode has no grid scan, hence nothing was "skipped"
        stats.edges_processed - before.edges_processed, fetched, bucket,
        round_timer.seconds()});
    ++stats.rounds;

    // Re-file tiles whose priority inputs the round changed. An algorithm
    // that cannot name its dirty rows gets a full oracle sweep (the same
    // per-iteration cost the grid scan pays).
    dirty_rows_scratch.clear();
    if (algo.dirty_rows(dirty_rows_scratch))
      refresh_rows(dirty_rows_scratch);
    else
      seed_worklist_full();
    return more;
  }

  // Drives worklist rounds to completion. `cold` runs algo.init first; a
  // non-empty `seed_tiles` (incremental resume) seeds the worklist from the
  // rows those tiles touch instead of a full grid sweep.
  EngineStats run_priority(bool cold,
                           std::span<const std::uint64_t> seed_tiles) {
    Timer total;
    if (cold) algo.init(store);
    store.device().reset_stats();
    build_row_tiles();
    worklist.reset(grid.tile_count());
    if (seed_tiles.empty()) {
      seed_worklist_full();
    } else {
      std::vector<std::uint32_t> rows;
      rows.reserve(seed_tiles.size() * 2);
      for (const std::uint64_t idx : seed_tiles) {
        const tile::TileCoord c = grid.coord_at(idx);
        rows.push_back(c.i);
        if (c.j != c.i) rows.push_back(c.j);
      }
      refresh_rows(rows);
    }
    bool more = true;
    std::uint32_t round = 0;
    while (more && !worklist.empty() && round < config.max_iterations) {
      more = run_round(round);
      ++round;
    }
    GS_CHECK_MSG(!more || worklist.empty(),
                 "algorithm did not converge within max_iterations");
    stats.iterations = round;
    return finish(total);
  }

  EngineStats run() {
    if (config.schedule == ScheduleMode::kPriority)
      return run_priority(/*cold=*/true, {});
    Timer total;
    algo.init(store);
    store.device().reset_stats();
    bool more = true;
    std::uint32_t iter = 0;
    while (more && iter < config.max_iterations) {
      more = run_iteration(iter);
      ++iter;
    }
    GS_CHECK_MSG(!more, "algorithm did not converge within max_iterations");
    stats.iterations = iter;
    return finish(total);
  }

  EngineStats finish(Timer& total) {
    const io::DeviceStats dev = store.device().stats();
    stats.bytes_read = dev.bytes_read;
    stats.retries = dev.retries;
    stats.short_reads = dev.short_reads;
    stats.failed_reads = dev.failed_reads;
    stats.backoff_seconds = dev.backoff_seconds;
    stats.bytes_copied_to_pool = pool.bytes_copied();
    stats.segment_refreshes =
        segments[0].buffer_refreshes() + segments[1].buffer_refreshes();
    stats.elapsed_seconds = total.seconds();
    return stats;
  }

  tile::TileStore& store;
  const tile::Grid& grid;
  const EngineConfig& config;
  TileAlgorithm& algo;
  CachePool pool;
  std::unique_ptr<CachingPolicy> policy;
  const tile::TileOverlay* overlay = nullptr;
  std::vector<std::uint64_t> overlay_tiles;  // nonempty, ascending
  Segment segments[2];
  std::size_t pending[2] = {0, 0};
  std::uint64_t next_serial = 0;
  // Every submitted request, kept until its completion is accepted, so a
  // failed or truncated read can be resubmitted whole (tiles are never
  // processed from partial data).
  struct InFlightRead {
    io::ReadRequest req;
    int attempts = 0;
  };
  std::unordered_map<std::uint64_t, InFlightRead> inflight;
  std::vector<std::string> read_failures;
  std::vector<io::Completion> completions_scratch;
  // Reused per-phase scratch (cleared before each use; never allocated on
  // the per-iteration hot path after warm-up).
  std::vector<std::uint64_t> slot_costs;
  std::vector<Chunk> chunks;
  std::vector<CachePool::Entry> rewind_entries;
  // Priority-mode state: the bucketed worklist, the row→tiles adjacency it
  // is refreshed through, and per-round scratch.
  TileWorklist worklist;
  std::vector<std::vector<std::uint64_t>> row_tiles;
  std::vector<std::uint8_t> row_mark;
  std::vector<std::uint64_t> round_tiles;
  std::vector<std::uint64_t> round_fetch;
  std::vector<std::uint64_t> round_delta_only;
  std::vector<std::uint32_t> dirty_rows_scratch;
  // Priority stamped onto this round's ReadRequests (the async engine
  // serves lower values first when requests from several rounds or engines
  // share a queue). Grid mode leaves it 0.
  std::uint32_t fetch_priority = 0;
  std::uint64_t bytes_fetched_total = 0;
  EngineStats stats;
};

ScrEngine::ScrEngine(tile::TileStore& store, EngineConfig config)
    : store_(store),
      config_(config),
      budget_(MemoryBudget::compute(config.stream_memory_bytes,
                                    config.segment_bytes)) {}

EngineStats ScrEngine::run(TileAlgorithm& algo) {
  Runner runner(store_, config_, budget_, algo);
  EngineStats s = runner.run();
  GS_LOG(Info) << algo.name() << ": " << s.iterations << " iterations, "
               << s.edges_processed << " edges processed, "
               << s.bytes_read / (1 << 20) << " MiB read, "
               << s.tiles_from_cache << " tiles from cache";
  return s;
}

EngineStats ScrEngine::resume(TileAlgorithm& algo,
                              std::span<const std::uint64_t> delta_tiles) {
  Runner runner(store_, config_, budget_, algo);
  if (delta_tiles.empty() || !algo.reactivate(store_, delta_tiles)) {
    // No prior state to resume from (or nothing to resume onto): the cold
    // run is the correct — and only — answer.
    GS_LOG(Info) << algo.name()
                 << ": reactivate declined, falling back to a cold run";
    return runner.run();
  }
  EngineStats s = runner.run_priority(/*cold=*/false, delta_tiles);
  GS_LOG(Info) << algo.name() << ": incremental resume over "
               << delta_tiles.size() << " delta tiles, " << s.rounds
               << " rounds, " << s.bytes_read / (1 << 20) << " MiB read";
  return s;
}

}  // namespace gstore::store
