#include "store/scr_engine.h"

#include <algorithm>
#include <vector>

#include "store/cache_pool.h"
#include "store/segment.h"
#include "tile/overlay.h"
#include "util/dcheck.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gstore::store {

namespace {
// Tags encode which segment a read belongs to so completions can be
// attributed while both segments have I/O in flight.
constexpr std::uint64_t make_tag(int segment, std::uint64_t serial) {
  GSTORE_DCHECK(segment == 0 || segment == 1);
  GSTORE_DCHECK_LT(serial, 1ull << 56);
  return (static_cast<std::uint64_t>(segment) << 56) | serial;
}
constexpr int tag_segment(std::uint64_t tag) {
  return static_cast<int>(tag >> 56);
}
}  // namespace

struct ScrEngine::Runner {
  Runner(tile::TileStore& store, const EngineConfig& config,
         const MemoryBudget& budget, TileAlgorithm& algo)
      : store(store),
        grid(store.grid()),
        config(config),
        algo(algo),
        pool(budget.pool_bytes),
        policy(CachingPolicy::make(config.policy)),
        overlay(store.overlay()) {
    const std::uint64_t cap =
        std::max<std::uint64_t>(budget.segment_bytes, store.max_tile_bytes());
    segments[0] = Segment(cap);
    segments[1] = Segment(cap);
    // The overlay is frozen for the duration of a run (reader/writer
    // contract in tile/overlay.h), so its tile list can be taken once.
    if (overlay != nullptr) overlay_tiles = overlay->nonempty_tiles();
  }

  // ---- helpers -----------------------------------------------------------

  bool needed_now(std::uint64_t layout_idx) const {
    if (!config.selective_fetch) return true;
    const tile::TileCoord c = grid.coord_at(layout_idx);
    return algo.tile_needed(c.i, c.j);
  }

  std::uint64_t overlay_count(std::uint64_t layout_idx) const {
    return overlay == nullptr ? 0 : overlay->tile_edges(layout_idx).size();
  }

  void process_one(std::uint64_t layout_idx, const std::uint8_t* data) {
    const tile::TileView v = store.view(layout_idx, data);
    algo.process_tile(v);
    if (overlay == nullptr) return;
    // Splice the overlay's un-compacted tuples into the scan as a second
    // view of the same tile: same coordinates, same SNB bases, extra edges.
    const std::span<const tile::SnbEdge> extra = overlay->tile_edges(layout_idx);
    if (extra.empty()) return;
    tile::TileView ov = v;
    ov.fat = false;  // overlays exist only for SNB stores
    ov.fat_edges = {};
    ov.edges = extra;
    algo.process_tile(ov);
  }

  // Greedily packs tiles from fetch[pos..] into `seg` and submits the reads
  // as one batched call (coalescing contiguous tiles into single requests).
  // Returns the number of read requests in flight for this segment.
  std::size_t fill_and_submit(int s, const std::vector<std::uint64_t>& fetch,
                              std::size_t& pos) {
    Segment& seg = segments[s];
    seg.clear();
    if (pos >= fetch.size()) return 0;

    // An oversized first tile grows the segment (tiles are never split:
    // "we do not fetch, process or cache partial data from any tile").
    seg.ensure_capacity(store.tile_bytes(fetch[pos]));
    while (pos < fetch.size() &&
           seg.try_add(fetch[pos], store.tile_bytes(fetch[pos])))
      ++pos;

    // Coalesce runs of layout-consecutive tiles: their bytes are contiguous
    // in the file and in the segment buffer by construction.
    std::vector<io::ReadRequest> batch;
    const auto& slots = seg.slots();
    std::size_t run_begin = 0;
    auto flush_run = [&](std::size_t run_end) {
      const TileSlot& first = slots[run_begin];
      const TileSlot& last = slots[run_end - 1];
      io::ReadRequest req;
      req.offset = store.tile_offset(first.layout_idx);
      req.length = static_cast<std::size_t>(last.offset + last.bytes - first.offset);
      req.buffer = seg.slot_data(first);
      req.tag = make_tag(s, next_serial++);
      batch.push_back(req);
      run_begin = run_end;
    };
    for (std::size_t k = 1; k < slots.size(); ++k) {
      // Segment packing invariant: slot bytes are laid out back-to-back, so
      // a layout-consecutive run is contiguous in buffer and file alike.
      GSTORE_DCHECK_EQ(slots[k].offset, slots[k - 1].offset + slots[k - 1].bytes);
      if (slots[k].layout_idx != slots[k - 1].layout_idx + 1) flush_run(k);
    }
    if (!slots.empty()) flush_run(slots.size());

    stats.tiles_from_disk += slots.size();
    if (batch.empty()) return 0;
    ++stats.io_batches;
    if (config.overlap_io) {
      const std::size_t n_requests = batch.size();
      store.device().submit(std::move(batch));
      return n_requests;
    }
    // Synchronous mode: read inline.
    Timer t;
    for (const auto& req : batch)
      store.device().read(req.buffer, req.length, req.offset);
    stats.io_wait_seconds += t.seconds();
    return 0;
  }

  // Waits until all in-flight requests for segment s have completed.
  void wait_segment(int s) {
    Timer t;
    while (pending[s] > 0) {
      std::vector<io::Completion> done;
      store.device().poll(1, 64, done);
      for (const auto& c : done) {
        if (!c.ok)
          throw IoError("tile read failed (tag " + std::to_string(c.tag) + ")",
                        EIO);
        const int seg = tag_segment(c.tag);
        GSTORE_DCHECK(seg == 0 || seg == 1);
        GSTORE_DCHECK_GT(pending[seg], 0);
        --pending[seg];
      }
    }
    stats.io_wait_seconds += t.seconds();
  }

  // Processes every tile resident in segment s (in parallel), then offers
  // the tiles to the cache pool under the policy.
  void process_segment(int s) {
    Segment& seg = segments[s];
    const auto& slots = seg.slots();
    Timer t;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1)
#endif
    for (std::size_t k = 0; k < slots.size(); ++k)
      process_one(slots[k].layout_idx, seg.slot_data(slots[k]));
    for (const auto& slot : slots) {
      const std::uint64_t oc = overlay_count(slot.layout_idx);
      stats.edges_processed += store.tile_edge_count(slot.layout_idx) + oc;
      stats.overlay_edges += oc;
    }
    stats.compute_seconds += t.seconds();

    // CACHE step of slide-cache-rewind.
    if (pool.budget() == 0) return;
    for (const auto& slot : slots) {
      const tile::TileCoord c = grid.coord_at(slot.layout_idx);
      if (!policy->should_cache(slot.layout_idx, c, algo)) continue;
      if (slot.bytes > pool.free_bytes() &&
          !policy->make_room(pool, slot.bytes, grid, algo))
        continue;
      pool.insert(slot.layout_idx, seg.slot_data(slot), slot.bytes);
    }
  }

  // ---- one iteration -----------------------------------------------------

  // Returns true if the algorithm wants another iteration.
  bool run_iteration(std::uint32_t iter) {
    const Timer iter_timer;
    const IterationStats before{stats.tiles_from_disk, stats.tiles_from_cache,
                                stats.tiles_skipped, stats.edges_processed, 0};
    algo.begin_iteration(iter);

    // REWIND: consume the cache pool first, no I/O (paper §VI-D).
    std::vector<std::uint64_t> cached_indices;
    if (config.rewind && pool.tile_count() > 0) {
      Timer t;
      const auto entries = pool.entries();
      cached_indices.reserve(entries.size());
      for (const auto& e : entries) cached_indices.push_back(e.layout_idx);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1)
#endif
      for (std::size_t k = 0; k < entries.size(); ++k) {
        if (!needed_now(entries[k].layout_idx)) continue;
        process_one(entries[k].layout_idx, entries[k].data);
      }
      for (const auto& e : entries) {
        if (!needed_now(e.layout_idx)) continue;
        pool.touch(e.layout_idx);
        stats.tiles_from_cache += 1;
        const std::uint64_t oc = overlay_count(e.layout_idx);
        stats.edges_processed += store.tile_edge_count(e.layout_idx) + oc;
        stats.overlay_edges += oc;
      }
      stats.compute_seconds += t.seconds();
    } else if (!config.rewind) {
      // Base policy keeps nothing across iterations.
      pool.clear();
    }

    // Fetch list: every stored, non-empty tile not already consumed from the
    // cache, that the algorithm needs this iteration — in layout order.
    std::vector<std::uint64_t> fetch;
    {
      std::size_t ci = 0;
      for (std::uint64_t idx = 0; idx < grid.tile_count(); ++idx) {
        while (ci < cached_indices.size() && cached_indices[ci] < idx) ++ci;
        const bool in_cache =
            ci < cached_indices.size() && cached_indices[ci] == idx;
        if (in_cache) continue;
        if (store.tile_bytes(idx) == 0) continue;
        if (!needed_now(idx)) {
          ++stats.tiles_skipped;
          continue;
        }
        fetch.push_back(idx);
      }
    }

    // SLIDE: double-buffered stream over the fetch list.
    std::size_t pos = 0;
    int cur = 0;
    pending[0] = pending[1] = 0;
    pending[cur] = fill_and_submit(cur, fetch, pos);
    while (!segments[cur].empty()) {
      const int nxt = cur ^ 1;
      // Double-buffer state machine: the segment about to prefetch must be
      // quiescent (its previous I/O reaped, its tiles processed).
      GSTORE_DCHECK_EQ(pending[nxt], 0);
      pending[nxt] = fill_and_submit(nxt, fetch, pos);  // prefetch
      wait_segment(cur);
      process_segment(cur);
      cur = nxt;
    }
    // SLIDE consumed the whole fetch list and reaped every read.
    GSTORE_DCHECK_EQ(pos, fetch.size());
    GSTORE_DCHECK_EQ(pending[0], 0);
    GSTORE_DCHECK_EQ(pending[1], 0);

    // Overlay tiles with no base bytes are invisible to the fetch list (and
    // never enter the cache), so they get their own no-I/O pass.
    if (overlay != nullptr) {
      Timer t;
      std::vector<std::uint64_t> delta_only;
      for (const std::uint64_t idx : overlay_tiles) {
        if (store.tile_bytes(idx) != 0) continue;  // spliced in during SLIDE/REWIND
        if (!needed_now(idx)) continue;
        delta_only.push_back(idx);
      }
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1)
#endif
      for (std::size_t k = 0; k < delta_only.size(); ++k)
        process_one(delta_only[k], nullptr);
      for (const std::uint64_t idx : delta_only) {
        const std::uint64_t oc = overlay_count(idx);
        stats.edges_processed += oc;
        stats.overlay_edges += oc;
      }
      stats.compute_seconds += t.seconds();
    }

    // Iteration-boundary cache analysis. Runs *before* end_iteration(): the
    // tile_useful_next oracle refers to the upcoming iteration, and
    // end_iteration typically promotes next-iteration metadata (e.g. BFS
    // frontier flags) to current.
    if (pool.budget() > 0) policy->analyze(pool, grid, algo);

    stats.per_iteration.push_back(IterationStats{
        stats.tiles_from_disk - before.tiles_from_disk,
        stats.tiles_from_cache - before.tiles_from_cache,
        stats.tiles_skipped - before.tiles_skipped,
        stats.edges_processed - before.edges_processed, iter_timer.seconds()});
    return algo.end_iteration(iter);
  }

  EngineStats run() {
    Timer total;
    algo.init(store);
    store.device().reset_stats();
    bool more = true;
    std::uint32_t iter = 0;
    while (more && iter < config.max_iterations) {
      more = run_iteration(iter);
      ++iter;
    }
    GS_CHECK_MSG(!more, "algorithm did not converge within max_iterations");
    stats.iterations = iter;
    stats.bytes_read = store.device().stats().bytes_read;
    stats.elapsed_seconds = total.seconds();
    return stats;
  }

  tile::TileStore& store;
  const tile::Grid& grid;
  const EngineConfig& config;
  TileAlgorithm& algo;
  CachePool pool;
  std::unique_ptr<CachingPolicy> policy;
  const tile::TileOverlay* overlay = nullptr;
  std::vector<std::uint64_t> overlay_tiles;  // nonempty, ascending
  Segment segments[2];
  std::size_t pending[2] = {0, 0};
  std::uint64_t next_serial = 0;
  EngineStats stats;
};

ScrEngine::ScrEngine(tile::TileStore& store, EngineConfig config)
    : store_(store),
      config_(config),
      budget_(MemoryBudget::compute(config.stream_memory_bytes,
                                    config.segment_bytes)) {}

EngineStats ScrEngine::run(TileAlgorithm& algo) {
  Runner runner(store_, config_, budget_, algo);
  EngineStats s = runner.run();
  GS_LOG(Info) << algo.name() << ": " << s.iterations << " iterations, "
               << s.edges_processed << " edges processed, "
               << s.bytes_read / (1 << 20) << " MiB read, "
               << s.tiles_from_cache << " tiles from cache";
  return s;
}

}  // namespace gstore::store
