// Pluggable caching policies for the SCR engine.
//
// kProactive is the paper's contribution (§VI-C): cache exactly the tiles the
// algorithm's metadata says might be needed next iteration, evicting entries
// the oracle has since ruled out. kLru is the FlashGraph-style baseline the
// paper argues against; kNone is pure streaming (X-Stream-style, and the
// "base policy" of Fig 13 when combined with rewind=off).
#pragma once

#include <cstdint>
#include <memory>

#include "store/algorithm.h"
#include "store/cache_pool.h"
#include "tile/grid.h"

namespace gstore::store {

enum class CachePolicyKind { kProactive, kLru, kNone };

class CachingPolicy {
 public:
  virtual ~CachingPolicy() = default;

  // Whether a just-processed tile should be copied into the pool.
  virtual bool should_cache(std::uint64_t layout_idx,
                            const tile::TileCoord& coord,
                            const TileAlgorithm& algo) const = 0;

  // Makes room for `bytes` (called when an insert would not fit). Returns
  // true if the tile should still be inserted after eviction.
  virtual bool make_room(CachePool& pool, std::uint64_t bytes,
                         const tile::Grid& grid, const TileAlgorithm& algo) = 0;

  // Iteration-boundary analysis: drop entries the oracle now rules out
  // (proactive) or do nothing (LRU/None).
  virtual void analyze(CachePool& pool, const tile::Grid& grid,
                       const TileAlgorithm& algo) = 0;

  static std::unique_ptr<CachingPolicy> make(CachePolicyKind kind);
};

}  // namespace gstore::store
