// A streaming memory segment: a fixed-size aligned buffer holding a batch of
// tiles read from disk (paper §VI-A). Two segments alternate between I/O and
// processing ("slide"); a third role — cache-pool feeding — happens when a
// processed segment's tiles are copied into the pool.
#pragma once

#include <cstdint>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/dcheck.h"

namespace gstore::store {

// Placement of one tile inside a segment buffer.
struct TileSlot {
  std::uint64_t layout_idx = 0;
  std::uint64_t offset = 0;  // byte offset within the segment buffer
  std::uint64_t bytes = 0;
};

class Segment {
 public:
  Segment() = default;
  explicit Segment(std::uint64_t capacity)
      : buf_(capacity), capacity_(capacity) {}

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t used() const noexcept { return used_; }
  bool empty() const noexcept { return slots_.empty(); }

  // Reserves room for a tile; returns the slot offset or false if full.
  bool try_add(std::uint64_t layout_idx, std::uint64_t bytes) {
    if (used_ + bytes > capacity_) return false;
    slots_.push_back(TileSlot{layout_idx, used_, bytes});
    used_ += bytes;
    return true;
  }

  void clear() {
    slots_.clear();
    used_ = 0;
  }

  // Grows the buffer if a single tile exceeds the nominal capacity (the
  // paper's tiles are capped at 16GB; ours must still stream the largest
  // tile even when segment_bytes is configured small).
  void ensure_capacity(std::uint64_t bytes) {
    if (bytes <= capacity_) return;
    GSTORE_DCHECK_MSG(slots_.empty(),
                      "segment must be empty before its buffer is replaced");
    buf_ = gstore::AlignedBuffer(bytes);
    capacity_ = bytes;
  }

  std::uint8_t* data() noexcept { return buf_.data(); }
  const std::uint8_t* data() const noexcept { return buf_.data(); }
  std::uint8_t* slot_data(const TileSlot& s) noexcept {
    GSTORE_DCHECK_LE(s.offset + s.bytes, capacity_);
    return buf_.data() + s.offset;
  }
  const std::uint8_t* slot_data(const TileSlot& s) const noexcept {
    GSTORE_DCHECK_LE(s.offset + s.bytes, capacity_);
    return buf_.data() + s.offset;
  }

  const std::vector<TileSlot>& slots() const noexcept { return slots_; }

 private:
  gstore::AlignedBuffer buf_;
  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
  std::vector<TileSlot> slots_;
};

}  // namespace gstore::store
