// A streaming memory segment: a refcounted, fixed-size aligned buffer holding
// a batch of tiles read from disk (paper §VI-A). Two segments alternate
// between I/O and processing ("slide"); the cache pool pins slices of a
// processed segment's buffer instead of copying them, so a segment must not
// overwrite its buffer while pins are outstanding — begin_fill() swaps in a
// fresh allocation in that case and the old buffer is freed when the last
// pin drops (lifetime rules in docs/HOTPATH.md).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/dcheck.h"

namespace gstore::store {

// Placement of one tile inside a segment buffer.
struct TileSlot {
  std::uint64_t layout_idx = 0;
  std::uint64_t offset = 0;  // byte offset within the segment buffer
  std::uint64_t bytes = 0;
};

// Refcounted slice of tile bytes: an aliasing pointer that keeps the whole
// backing buffer alive for as long as any slice of it is held.
using BufferPin = std::shared_ptr<const std::uint8_t>;

class Segment {
 public:
  Segment() = default;
  explicit Segment(std::uint64_t capacity)
      : buf_(std::make_shared<gstore::AlignedBuffer>(capacity)),
        capacity_(capacity) {}

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t used() const noexcept { return used_; }
  bool empty() const noexcept { return slots_.empty(); }

  // Reserves room for a tile; returns the slot offset or false if full.
  bool try_add(std::uint64_t layout_idx, std::uint64_t bytes) {
    if (used_ + bytes > capacity_) return false;
    slots_.push_back(TileSlot{layout_idx, used_, bytes});
    used_ += bytes;
    return true;
  }

  void clear() {
    slots_.clear();
    used_ = 0;
  }

  // Readies the segment for a new fill: drops the slot table and, if the
  // cache pool still pins slices of the current buffer, swaps in a fresh
  // allocation instead of overwriting pinned bytes. The zero-copy
  // counterpart of the old memcpy-into-pool design.
  void begin_fill() {
    clear();
    if (buf_ != nullptr && buf_.use_count() > 1) {
      buf_ = std::make_shared<gstore::AlignedBuffer>(capacity_);
      ++buffer_refreshes_;
    }
  }

  // Buffers replaced because pins were outstanding (observability/tests).
  std::uint64_t buffer_refreshes() const noexcept { return buffer_refreshes_; }

  // Grows the buffer if a single tile exceeds the nominal capacity (the
  // paper's tiles are capped at 16GB; ours must still stream the largest
  // tile even when segment_bytes is configured small). Pinned slices of the
  // old buffer stay valid — the allocation lives until the last pin drops.
  void ensure_capacity(std::uint64_t bytes) {
    if (bytes <= capacity_) return;
    GSTORE_DCHECK_MSG(slots_.empty(),
                      "segment must be empty before its buffer is replaced");
    buf_ = std::make_shared<gstore::AlignedBuffer>(bytes);
    capacity_ = bytes;
  }

  std::uint8_t* data() noexcept { return buf_ ? buf_->data() : nullptr; }
  const std::uint8_t* data() const noexcept {
    return buf_ ? buf_->data() : nullptr;
  }
  std::uint8_t* slot_data(const TileSlot& s) noexcept {
    GSTORE_DCHECK_LE(s.offset + s.bytes, capacity_);
    return buf_->data() + s.offset;
  }
  const std::uint8_t* slot_data(const TileSlot& s) const noexcept {
    GSTORE_DCHECK_LE(s.offset + s.bytes, capacity_);
    return buf_->data() + s.offset;
  }

  // Refcounted view of one slot's bytes, for zero-copy cache insertion.
  // Pins the entire backing buffer until released.
  BufferPin pin_slot(const TileSlot& s) const {
    GSTORE_DCHECK_LE(s.offset + s.bytes, capacity_);
    return BufferPin(buf_, buf_->data() + s.offset);
  }

  const std::vector<TileSlot>& slots() const noexcept { return slots_; }

 private:
  std::shared_ptr<gstore::AlignedBuffer> buf_;
  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t buffer_refreshes_ = 0;
  std::vector<TileSlot> slots_;
};

}  // namespace gstore::store
