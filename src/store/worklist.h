// Bucketed tile worklist for priority-driven scheduling (ROADMAP item 2).
//
// Delta-stepping over tiles, in the Galois worklist style: every tile with
// pending work is filed under an integer bucket (its priority; smaller =
// more urgent), and the engine drains the minimum nonempty bucket per round
// instead of sliding the whole grid in row order. For SSSP the bucket is
// floor(min pending distance / delta); for BFS it is the frontier level;
// for PageRank-delta it is the exponent of the pending residual mass.
//
// Refiling is lazy: push() with a new priority just appends to the new
// bucket and flips the authoritative per-tile priority — the entry left in
// the old bucket is recognized as stale during drain (its recorded bucket
// no longer matches prio_[idx]) and skipped. This keeps push() O(1) and
// avoids scanning buckets on every priority change, at the cost of at most
// one dead slot per refile (reclaimed as soon as its bucket is drained).
//
// Not thread-safe: the engine mutates the worklist only between rounds, on
// the orchestrating thread (same single-writer contract as the overlay).
#pragma once

#include <cstdint>
#include <vector>

namespace gstore::store {

class TileWorklist {
 public:
  // Matches TileAlgorithm::kPriorityIdle: "no pending work for this tile".
  static constexpr std::uint32_t kIdle = 0xffffffffu;
  // Priorities at or above this are clamped into one overflow bucket, so a
  // pathological oracle (e.g. huge SSSP distances) cannot allocate millions
  // of empty bucket vectors. Tiles in the overflow bucket drain together
  // and are re-filed with finer priorities as the wave approaches them.
  static constexpr std::uint32_t kMaxBucket = 1u << 16;

  // Resets to an empty worklist over `tile_count` layout indices.
  void reset(std::uint64_t tile_count);

  // Files (or re-files) a tile under `priority`; kIdle removes it.
  void push(std::uint64_t layout_idx, std::uint32_t priority);

  // Removes a tile from the worklist (its bucket entry goes stale).
  void deactivate(std::uint64_t layout_idx);

  // The authoritative priority of one tile (kIdle when unfiled).
  std::uint32_t priority_of(std::uint64_t layout_idx) const {
    return prio_[layout_idx];
  }

  bool empty() const noexcept { return live_ == 0; }
  std::uint64_t size() const noexcept { return live_; }

  // Pops every tile filed in the minimum nonempty bucket into `out`
  // (ascending layout order, so the fetch path keeps sequential I/O), and
  // returns that bucket. Popped tiles become unfiled; the caller re-pushes
  // any that still have work after the round. Returns kIdle when empty.
  std::uint32_t drain_min(std::vector<std::uint64_t>& out);

 private:
  std::vector<std::uint32_t> prio_;  // per layout index; kIdle = unfiled
  std::vector<std::vector<std::uint64_t>> buckets_;
  std::uint64_t live_ = 0;   // tiles currently filed (stale entries excluded)
  std::uint32_t cursor_ = 0; // no nonempty bucket below this index
};

}  // namespace gstore::store
