// The algorithm interface the SCR engine drives (paper §VI).
//
// An algorithm owns its metadata arrays (depth, rank, labels …) and exposes
// three oracles the engine uses:
//   * tile_needed(i,j)      — selective fetch: must this tile be processed in
//                             the *current* iteration? (paper §V-B)
//   * tile_useful_next(i,j) — proactive caching: with the information known
//                             so far, might this tile be needed in the *next*
//                             iteration? (paper §VI-C Rules 1 & 2)
//   * tile_priority(i,j)    — worklist scheduling (docs/SCHEDULING.md): how
//                             urgent is this tile's pending work? The engine's
//                             priority mode drains the minimum bucket per
//                             round instead of sliding the grid in row order.
// process_tile() may be called concurrently for different tiles; metadata
// updates must be thread-safe.
//
// Two compute paths exist (docs/HOTPATH.md):
//   * per-edge   — process_tile() iterates with tile::visit_edges. Simple,
//                  and the correctness oracle for the block path.
//   * block      — process_tile() forwards to process_tile_blocked(), which
//                  decodes the tile into SoA EdgeBlocks and calls
//                  process_block() per block. Hot algorithms override
//                  process_block() with a branch-hoisted, prefetching kernel.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tile/edge_block.h"
#include "tile/tile_file.h"

namespace gstore::store {

class TileAlgorithm {
 public:
  // tile_priority() result meaning "this tile has no pending work".
  static constexpr std::uint32_t kPriorityIdle = 0xffffffffu;

  virtual ~TileAlgorithm() = default;

  virtual std::string name() const = 0;

  // Called once before the first iteration; the store outlives the run.
  virtual void init(const tile::TileStore& store) = 0;

  virtual void begin_iteration(std::uint32_t iter) = 0;

  // Process every edge of one tile. `view.edges` are SNB tuples; global ids
  // are view.src_base + e.src16 / view.dst_base + e.dst16.
  virtual void process_tile(const tile::TileView& view) = 0;

  // Process one decoded SoA block of a tile. The default reconstructs the
  // block's slice of its source view and feeds it back through
  // process_tile(), so algorithms that only implement the per-edge path
  // work unchanged when something drives them block-wise. Hot algorithms
  // override this; their process_tile() then forwards to
  // process_tile_blocked() so both entry points share one kernel.
  virtual void process_block(const tile::EdgeBlock& block) {
    tile::TileView sub = *block.view;
    if (sub.fat) {
      sub.fat_edges = sub.fat_edges.subspan(block.first, block.size);
    } else if (sub.codec == tile::TileCodec::kRaw) {
      sub.edges = sub.edges.subspan(block.first, block.size);
    } else {
      // Encoded tile: the block's SoA arrays are the only materialized form
      // (there is no tuple span to slice), so re-narrow the already-decoded
      // global ids back into a raw SNB slice for the per-edge path.
      tile::SnbEdge tmp[tile::EdgeBlock::kMaxEdges];
      for (std::uint32_t k = 0; k < block.size; ++k) {
        tmp[k].src16 = static_cast<std::uint16_t>(block.src[k] - sub.src_base);
        tmp[k].dst16 = static_cast<std::uint16_t>(block.dst[k] - sub.dst_base);
      }
      sub = tile::splice_view(sub, std::span<const tile::SnbEdge>(tmp, block.size));
      process_tile(sub);
      return;
    }
    process_tile(sub);
  }

  // Returns true if another iteration is required.
  virtual bool end_iteration(std::uint32_t iter) = 0;

  // Selective-fetch oracle. Default: every tile, every iteration.
  virtual bool tile_needed(std::uint32_t /*i*/, std::uint32_t /*j*/) const {
    return true;
  }

  // Proactive-caching oracle. Default: everything is worth caching (true for
  // PageRank/WCC, where the whole graph is reused each iteration).
  virtual bool tile_useful_next(std::uint32_t /*i*/, std::uint32_t /*j*/) const {
    return true;
  }

  // ---- priority-mode hooks (ScheduleMode::kPriority, docs/SCHEDULING.md) --

  // Priority oracle: the delta-stepping bucket of this tile's pending work
  // (smaller = drained earlier), or kPriorityIdle when it has none. The
  // default derives from tile_needed, which puts every needed tile in one
  // bucket — grid-oriented algorithms then run unchanged in priority mode,
  // one bucket-0 round per iteration.
  virtual std::uint32_t tile_priority(std::uint32_t i, std::uint32_t j) const {
    return tile_needed(i, j) ? 0 : kPriorityIdle;
  }

  // Round hooks. A priority round processes one worklist bucket, not the
  // whole grid; algorithms that distinguish rounds from iterations (e.g.
  // delta-stepping SSSP snapshotting the rows it is about to drain)
  // override these. Defaults delegate to the iteration hooks.
  virtual void begin_round(std::uint32_t round, std::uint32_t bucket) {
    (void)bucket;
    begin_iteration(round);
  }
  // Returns false to stop the run even if tiles remain filed (e.g. a
  // residual algorithm whose total pending mass fell under tolerance).
  virtual bool end_round(std::uint32_t round, std::uint32_t bucket) {
    (void)bucket;
    return end_iteration(round);
  }

  // Label updates made during the last round (relaxations, visits, pushed
  // mass). The engine attributes a round's fetched bytes to
  // wasted_fetch_bytes when this is 0. Default: unknown, counts as progress.
  virtual std::uint64_t last_round_updates() const { return 1; }

  // Incremental worklist maintenance: appends the tile-row indices whose
  // priority inputs changed during the last round, so the engine re-files
  // only tiles touching those rows. Returns false when the dirty set is
  // unknown — the engine then re-evaluates every tile.
  virtual bool dirty_rows(std::vector<std::uint32_t>& /*out*/) const {
    return false;
  }

  // Incremental recompute (ScrEngine::resume): re-arm pending work from a
  // previous converged run for exactly the tiles a WAL delta touched — the
  // overlay carrying the new edges is already attached to `store`. Returns
  // false when the algorithm cannot resume (no prior state, or its labels
  // are not monotone under edge insertion); the engine then falls back to a
  // cold run.
  virtual bool reactivate(const tile::TileStore& /*store*/,
                          std::span<const std::uint64_t> /*delta_tiles*/) {
    return false;
  }

 protected:
  // Block-path driver for process_tile() overrides: decodes the view and
  // dispatches each block through the process_block() virtual.
  void process_tile_blocked(const tile::TileView& view) {
    tile::for_each_block(
        view, [this](const tile::EdgeBlock& b) { process_block(b); });
  }
};

}  // namespace gstore::store
