// The SCR (slide–cache–rewind) engine (paper §VI, Figure 8).
//
// Each iteration:
//   REWIND — process the tiles already sitting in the cache pool before any
//            I/O is issued (they were saved from the previous iteration).
//   SLIDE  — stream the remaining needed tiles from disk in physical-group
//            layout order, double-buffered: one segment is loading via the
//            async engine while the other is being processed.
//   CACHE  — each processed segment offers its tiles to the cache pool under
//            the configured policy; proactive analysis evicts tiles the
//            algorithm's metadata rules out for the next iteration.
//
// ScheduleMode::kPriority replaces the grid-order iteration with bucketed
// worklist rounds (docs/SCHEDULING.md): each round drains the minimum
// priority bucket of tiles — cached ones first, then a SLIDE over the rest —
// and re-files tiles whose priority the algorithm's updates changed.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "store/algorithm.h"
#include "store/caching_policy.h"
#include "store/memory_budget.h"
#include "tile/tile_file.h"

namespace gstore::store {

// How the engine orders tile work within a run.
//   kGrid     — the paper's scheme: every iteration scans needed tiles in
//               physical layout order.
//   kPriority — delta-stepping worklist: tiles carry algorithm-assigned
//               priorities and rounds drain the minimum bucket first. The
//               worklist subsumes selective fetch (an idle tile is simply
//               never filed), so EngineConfig::selective_fetch is ignored.
enum class ScheduleMode { kGrid, kPriority };

struct EngineConfig {
  std::uint64_t stream_memory_bytes = 64ull << 20;
  std::uint64_t segment_bytes = 8ull << 20;
  CachePolicyKind policy = CachePolicyKind::kProactive;
  ScheduleMode schedule = ScheduleMode::kGrid;
  bool rewind = true;           // off = "base policy" of the Fig 13 ablation
  bool selective_fetch = true;  // honour algo.tile_needed when fetching
  bool overlap_io = true;       // double-buffer I/O with compute
  std::uint32_t max_iterations = 100000;
  // Whole-tile retry budget applied by the engine to failed or truncated
  // tile reads, layered above the async engine's own per-read retries
  // (io::RetryPolicy). Past the budget the iteration fails with a clean
  // quiesce: every in-flight read is drained before the exception escapes.
  int read_retry_budget = 2;
};

// Per-iteration breakdown: how the working set and I/O evolve as frontiers
// grow/shrink and the cache warms (what the paper's Figure 8 timeline shows).
// In priority mode one entry covers one worklist *round* (one drained
// bucket), not one grid sweep: `bucket` records which bucket it drained and
// tiles_skipped stays 0 — tiles the worklist never filed were not "scanned
// and skipped", they were never candidates (satellite 3 of ISSUE 10).
struct IterationStats {
  static constexpr std::uint32_t kNoBucket = 0xffffffffu;  // grid-mode entry
  std::uint64_t tiles_from_disk = 0;
  std::uint64_t tiles_from_cache = 0;
  std::uint64_t tiles_skipped = 0;
  std::uint64_t edges_processed = 0;
  std::uint64_t bytes_fetched = 0;   // base-tile bytes read this round/iter
  std::uint32_t bucket = kNoBucket;  // drained worklist bucket (priority mode)
  double seconds = 0;
};

struct EngineStats {
  // Grid mode: grid sweeps. Priority mode: worklist rounds (same value as
  // `rounds`), so convergence comparisons read one field in both modes.
  std::uint32_t iterations = 0;
  // Worklist rounds executed (0 in grid mode). A round drains one bucket.
  std::uint64_t rounds = 0;
  // Highest bucket any round drained (0 when rounds == 0).
  std::uint32_t max_bucket = 0;
  // Base-tile bytes fetched in rounds/iterations whose processing produced
  // zero label updates (last_round_updates() == 0) — I/O that bought no
  // progress. Convergence-tail waste the priority mode exists to remove.
  std::uint64_t wasted_fetch_bytes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t tiles_from_disk = 0;
  std::uint64_t tiles_from_cache = 0;
  std::uint64_t tiles_skipped = 0;   // selective fetch: not needed this iter
  std::uint64_t edges_processed = 0;
  // Un-compacted edges spliced into tile scans from an attached overlay
  // (counted once per iteration they were processed, like base edges; also
  // included in edges_processed).
  std::uint64_t overlay_edges = 0;
  std::uint64_t io_batches = 0;      // submit() calls (paper: batching saves syscalls)
  // Bytes memcpy'd into the cache pool. The zero-copy data path pins
  // segment slices instead of copying, so this stays 0; a nonzero value is
  // a regression back to the copy path.
  std::uint64_t bytes_copied_to_pool = 0;
  // Segment buffers replaced because the pool still pinned slices of them
  // (the allocate-fresh-on-demand half of the zero-copy contract).
  std::uint64_t segment_refreshes = 0;
  // Recovery counters from the I/O layer (io::DeviceStats): reads retried
  // by the async workers, short reads resubmitted for their tail, reads
  // that exhausted the worker budget, and total backoff slept.
  std::uint64_t retries = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t failed_reads = 0;
  // Whole-tile resubmissions performed by the engine above the async layer
  // (a tile whose read came back failed or truncated is reissued up to
  // EngineConfig::read_retry_budget times).
  std::uint64_t tile_resubmits = 0;
  double backoff_seconds = 0;
  double io_wait_seconds = 0;
  double compute_seconds = 0;
  double elapsed_seconds = 0;
  std::vector<IterationStats> per_iteration;
};

class ScrEngine {
 public:
  ScrEngine(tile::TileStore& store, EngineConfig config = {});

  // Runs the algorithm to completion and returns run statistics.
  EngineStats run(TileAlgorithm& algo);

  // Incremental recompute: re-activates only the tiles a WAL delta touched
  // (`delta_tiles`, layout indices from TileOverlay::nonempty_tiles) and
  // drives priority rounds until the re-armed work drains, instead of
  // rerunning from scratch. `algo` must hold the converged state of a prior
  // run over the same store, and the overlay carrying the new edges must be
  // attached to the store before the call. Falls back to a cold run() when
  // the algorithm's reactivate() declines. Always uses priority scheduling —
  // the worklist is what makes "only the affected tiles" expressible.
  EngineStats resume(TileAlgorithm& algo,
                     std::span<const std::uint64_t> delta_tiles);

  const EngineConfig& config() const noexcept { return config_; }
  const MemoryBudget& budget() const noexcept { return budget_; }

 private:
  struct Runner;
  tile::TileStore& store_;
  EngineConfig config_;
  MemoryBudget budget_;
};

}  // namespace gstore::store
