#include "store/cache_pool.h"

#include <algorithm>
#include <cstring>

#include "util/dcheck.h"

namespace gstore::store {

bool CachePool::insert_locked(std::uint64_t layout_idx, BufferPin pin,
                              std::uint64_t bytes) {
  erase_locked(layout_idx);
  if (bytes > free_bytes_locked()) return false;
  Stored s;
  s.pin = std::move(pin);
  s.bytes = bytes;
  s.stamp = ++clock_;
  used_ += bytes;
  GSTORE_DCHECK_LE(used_, budget_);
  tiles_.emplace(layout_idx, std::move(s));
  return true;
}

bool CachePool::insert_pinned(std::uint64_t layout_idx, BufferPin pin,
                              std::uint64_t bytes) {
  GSTORE_DCHECK(pin != nullptr || bytes == 0);
  MutexLock lock(mutex_);
  return insert_locked(layout_idx, std::move(pin), bytes);
}

bool CachePool::insert(std::uint64_t layout_idx, const std::uint8_t* data,
                       std::uint64_t bytes) {
  GSTORE_DCHECK(data != nullptr || bytes == 0);
  // Copy into an owning buffer, then alias it as a pin (std::vector rather
  // than a raw array: R2 bans raw allocation in src/store).
  auto owner = std::make_shared<std::vector<std::uint8_t>>(data, data + bytes);
  BufferPin pin(owner, owner->data());
  MutexLock lock(mutex_);
  if (!insert_locked(layout_idx, std::move(pin), bytes)) return false;
  bytes_copied_ += bytes;
  return true;
}

std::uint64_t CachePool::erase(std::uint64_t layout_idx) {
  MutexLock lock(mutex_);
  return erase_locked(layout_idx);
}

std::uint64_t CachePool::erase_locked(std::uint64_t layout_idx) {
  auto it = tiles_.find(layout_idx);
  if (it == tiles_.end()) return 0;
  const std::uint64_t freed = it->second.bytes;
  GSTORE_DCHECK_GE(used_, freed);
  used_ -= freed;
  tiles_.erase(it);
  return freed;
}

void CachePool::clear() {
  MutexLock lock(mutex_);
  tiles_.clear();
  used_ = 0;
}

void CachePool::touch(std::uint64_t layout_idx) {
  MutexLock lock(mutex_);
  auto it = tiles_.find(layout_idx);
  if (it != tiles_.end()) it->second.stamp = ++clock_;
}

std::uint64_t CachePool::evict_lru(std::uint64_t needed) {
  MutexLock lock(mutex_);
  std::uint64_t freed = 0;
  while (free_bytes_locked() + freed < needed && !tiles_.empty()) {
    auto victim = tiles_.begin();
    for (auto it = tiles_.begin(); it != tiles_.end(); ++it)
      if (it->second.stamp < victim->second.stamp) victim = it;
    freed += victim->second.bytes;
    GSTORE_DCHECK_GE(used_, victim->second.bytes);
    used_ -= victim->second.bytes;
    tiles_.erase(victim);
  }
  // Accounting invariant: an empty pool must report zero bytes in use.
  GSTORE_DCHECK(!tiles_.empty() || used_ == 0);
  return freed;
}

std::vector<CachePool::Entry> CachePool::entries() const {
  std::vector<Entry> out;
  // Size the snapshot before taking the pool lock so the bulk allocation
  // happens outside it; tile_count() briefly takes its own lock.
  out.reserve(tile_count());
  MutexLock lock(mutex_);
  for (const auto& [idx, stored] : tiles_)
    // GL-SAFE(GL1): capacity was reserved above; push_back reallocates
    // only if the pool grew between the two lock acquisitions.
    out.push_back(Entry{idx, stored.pin.get(), stored.bytes});
  return out;
}

}  // namespace gstore::store
