#include "store/cache_pool.h"

#include <algorithm>
#include <cstring>

#include "util/dcheck.h"

namespace gstore::store {

bool CachePool::insert(std::uint64_t layout_idx, const std::uint8_t* data,
                       std::uint64_t bytes) {
  GSTORE_DCHECK(data != nullptr || bytes == 0);
  MutexLock lock(mutex_);
  erase_locked(layout_idx);
  if (bytes > free_bytes_locked()) return false;
  Stored s;
  s.data.resize(bytes);
  if (bytes > 0) std::memcpy(s.data.data(), data, bytes);
  s.stamp = ++clock_;
  used_ += bytes;
  GSTORE_DCHECK_LE(used_, budget_);
  tiles_.emplace(layout_idx, std::move(s));
  return true;
}

std::uint64_t CachePool::erase(std::uint64_t layout_idx) {
  MutexLock lock(mutex_);
  return erase_locked(layout_idx);
}

std::uint64_t CachePool::erase_locked(std::uint64_t layout_idx) {
  auto it = tiles_.find(layout_idx);
  if (it == tiles_.end()) return 0;
  const std::uint64_t freed = it->second.data.size();
  GSTORE_DCHECK_GE(used_, freed);
  used_ -= freed;
  tiles_.erase(it);
  return freed;
}

void CachePool::clear() {
  MutexLock lock(mutex_);
  tiles_.clear();
  used_ = 0;
}

void CachePool::touch(std::uint64_t layout_idx) {
  MutexLock lock(mutex_);
  auto it = tiles_.find(layout_idx);
  if (it != tiles_.end()) it->second.stamp = ++clock_;
}

std::uint64_t CachePool::evict_lru(std::uint64_t needed) {
  MutexLock lock(mutex_);
  std::uint64_t freed = 0;
  while (free_bytes_locked() + freed < needed && !tiles_.empty()) {
    auto victim = tiles_.begin();
    for (auto it = tiles_.begin(); it != tiles_.end(); ++it)
      if (it->second.stamp < victim->second.stamp) victim = it;
    freed += victim->second.data.size();
    GSTORE_DCHECK_GE(used_, victim->second.data.size());
    used_ -= victim->second.data.size();
    tiles_.erase(victim);
  }
  // Accounting invariant: an empty pool must report zero bytes in use.
  GSTORE_DCHECK(!tiles_.empty() || used_ == 0);
  return freed;
}

std::vector<CachePool::Entry> CachePool::entries() const {
  MutexLock lock(mutex_);
  std::vector<Entry> out;
  out.reserve(tiles_.size());
  for (const auto& [idx, stored] : tiles_)
    out.push_back(Entry{idx, stored.data.data(), stored.data.size()});
  return out;
}

}  // namespace gstore::store
