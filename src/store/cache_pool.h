// Zero-copy tile cache pool (paper §VI-A/§VI-C).
//
// Processed segments donate their useful tiles here by *pinning* refcounted
// slices of the segment buffer (insert_pinned) — no memcpy on the hot path;
// eviction just drops the pin and the backing buffer is freed when its last
// pin goes away. A copying insert() remains for callers without a
// refcounted buffer (tests, ablations) and is tallied in bytes_copied() so
// regressions back to the copy path are observable. The pool is bounded by
// a byte budget counted over pinned slice bytes. Iteration order is layout
// order so the rewind phase processes cached tiles in the same disk order
// the streaming phase would have. Tracks recency for the LRU baseline
// policy. Lifetime rules: docs/HOTPATH.md.
//
// Synchronization: all bookkeeping (insert/erase/touch/evict/counters) is
// internally serialized by `mutex_`, so concurrent metadata operations are
// safe. The tile *bytes* behind an Entry pointer are a separate contract:
// entries()/for_each_entry() hand out pointers into pinned buffers, and the
// caller must not run erase()/clear()/evict_lru() for those tiles while
// another thread still dereferences them (the SCR engine satisfies this by
// structuring each iteration into rewind → slide → cache phases).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "store/segment.h"
#include "util/sync.h"

namespace gstore::store {

class CachePool {
 public:
  explicit CachePool(std::uint64_t budget_bytes = 0) : budget_(budget_bytes) {}

  std::uint64_t budget() const noexcept { return budget_; }
  std::uint64_t used() const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return used_;
  }
  std::uint64_t free_bytes() const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return free_bytes_locked();
  }
  std::size_t tile_count() const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return tiles_.size();
  }
  bool contains(std::uint64_t layout_idx) const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return tiles_.count(layout_idx) != 0;
  }

  // Zero-copy insert: pins `bytes` starting at pin.get(). Returns false
  // (and stores nothing) if it does not fit. Replaces an existing entry for
  // the same tile. The pinned bytes must stay immutable while cached — the
  // segment guarantees this by refreshing its buffer instead of reusing it.
  bool insert_pinned(std::uint64_t layout_idx, BufferPin pin,
                     std::uint64_t bytes) GSTORE_EXCLUDES(mutex_);

  // Copying insert for callers that do not hold a refcounted buffer.
  // Counted in bytes_copied(); the engine's hot path must never take this.
  bool insert(std::uint64_t layout_idx, const std::uint8_t* data,
              std::uint64_t bytes) GSTORE_EXCLUDES(mutex_);

  // Cumulative bytes memcpy'd by insert() — 0 on the zero-copy path.
  std::uint64_t bytes_copied() const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return bytes_copied_;
  }

  // Removes one tile; returns freed bytes (0 if absent).
  std::uint64_t erase(std::uint64_t layout_idx) GSTORE_EXCLUDES(mutex_);

  void clear() GSTORE_EXCLUDES(mutex_);

  // Marks a tile as used this iteration (for LRU recency).
  void touch(std::uint64_t layout_idx) GSTORE_EXCLUDES(mutex_);

  // Evicts least-recently-touched tiles until at least `needed` bytes are
  // free. Returns bytes freed.
  std::uint64_t evict_lru(std::uint64_t needed) GSTORE_EXCLUDES(mutex_);

  struct Entry {
    std::uint64_t layout_idx;
    const std::uint8_t* data;
    std::uint64_t bytes;
  };

  // Allocation-free iteration in layout order: invokes fn(const Entry&) for
  // every cached tile with the pool lock held. `fn` must not call back into
  // the pool (the mutex is not recursive) and must not retain the data
  // pointer past the phase contract in the class comment.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    for (const auto& [idx, stored] : tiles_)
      fn(Entry{idx, stored.pin.get(), stored.bytes});
  }

  // Snapshot of entries in layout order (safe to erase entries *after*
  // iterating the snapshot, not during — see the class comment). Allocates;
  // hot paths use for_each_entry() into reused storage instead.
  std::vector<Entry> entries() const GSTORE_EXCLUDES(mutex_);

 private:
  struct Stored {
    BufferPin pin;             // aliased into a segment buffer, or an owning
                               // copy when insert() was used
    std::uint64_t bytes = 0;
    std::uint64_t stamp = 0;   // recency
  };

  std::uint64_t free_bytes_locked() const GSTORE_REQUIRES(mutex_) {
    return budget_ > used_ ? budget_ - used_ : 0;
  }
  bool insert_locked(std::uint64_t layout_idx, BufferPin pin,
                     std::uint64_t bytes) GSTORE_REQUIRES(mutex_);
  std::uint64_t erase_locked(std::uint64_t layout_idx) GSTORE_REQUIRES(mutex_);

  mutable Mutex mutex_{"CachePool::mutex_"};
  std::map<std::uint64_t, Stored> tiles_ GSTORE_GUARDED_BY(mutex_);  // keyed by layout index (sorted)
  const std::uint64_t budget_;
  std::uint64_t used_ GSTORE_GUARDED_BY(mutex_) = 0;
  std::uint64_t clock_ GSTORE_GUARDED_BY(mutex_) = 0;
  std::uint64_t bytes_copied_ GSTORE_GUARDED_BY(mutex_) = 0;
};

}  // namespace gstore::store
