// Copy-based tile cache pool (paper §VI-A/§VI-C).
//
// Processed segments donate their useful tiles here via memcpy; the pool is
// bounded by a byte budget. Iteration order is layout order so the rewind
// phase processes cached tiles in the same disk order the streaming phase
// would have. Tracks recency for the LRU baseline policy.
//
// Synchronization: all bookkeeping (insert/erase/touch/evict/counters) is
// internally serialized by `mutex_`, so concurrent metadata operations are
// safe. The tile *bytes* behind an Entry pointer are a separate contract:
// entries() hands out pointers into the pool, and the caller must not run
// erase()/clear()/evict_lru() for those tiles while another thread still
// dereferences them (the SCR engine satisfies this by structuring each
// iteration into rewind → slide → cache phases).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/sync.h"

namespace gstore::store {

class CachePool {
 public:
  explicit CachePool(std::uint64_t budget_bytes = 0) : budget_(budget_bytes) {}

  std::uint64_t budget() const noexcept { return budget_; }
  std::uint64_t used() const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return used_;
  }
  std::uint64_t free_bytes() const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return free_bytes_locked();
  }
  std::size_t tile_count() const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return tiles_.size();
  }
  bool contains(std::uint64_t layout_idx) const GSTORE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return tiles_.count(layout_idx) != 0;
  }

  // Copies a tile into the pool; returns false (and stores nothing) if it
  // does not fit. Replaces an existing entry for the same tile.
  bool insert(std::uint64_t layout_idx, const std::uint8_t* data,
              std::uint64_t bytes) GSTORE_EXCLUDES(mutex_);

  // Removes one tile; returns freed bytes (0 if absent).
  std::uint64_t erase(std::uint64_t layout_idx) GSTORE_EXCLUDES(mutex_);

  void clear() GSTORE_EXCLUDES(mutex_);

  // Marks a tile as used this iteration (for LRU recency).
  void touch(std::uint64_t layout_idx) GSTORE_EXCLUDES(mutex_);

  // Evicts least-recently-touched tiles until at least `needed` bytes are
  // free. Returns bytes freed.
  std::uint64_t evict_lru(std::uint64_t needed) GSTORE_EXCLUDES(mutex_);

  struct Entry {
    std::uint64_t layout_idx;
    const std::uint8_t* data;
    std::uint64_t bytes;
  };
  // Snapshot of entries in layout order (safe to erase entries *after*
  // iterating the snapshot, not during — see the class comment).
  std::vector<Entry> entries() const GSTORE_EXCLUDES(mutex_);

 private:
  struct Stored {
    std::vector<std::uint8_t> data;
    std::uint64_t stamp = 0;  // recency
  };

  std::uint64_t free_bytes_locked() const GSTORE_REQUIRES(mutex_) {
    return budget_ > used_ ? budget_ - used_ : 0;
  }
  std::uint64_t erase_locked(std::uint64_t layout_idx) GSTORE_REQUIRES(mutex_);

  mutable Mutex mutex_{"CachePool::mutex_"};
  std::map<std::uint64_t, Stored> tiles_ GSTORE_GUARDED_BY(mutex_);  // keyed by layout index (sorted)
  const std::uint64_t budget_;
  std::uint64_t used_ GSTORE_GUARDED_BY(mutex_) = 0;
  std::uint64_t clock_ GSTORE_GUARDED_BY(mutex_) = 0;
};

}  // namespace gstore::store
