// Copy-based tile cache pool (paper §VI-A/§VI-C).
//
// Processed segments donate their useful tiles here via memcpy; the pool is
// bounded by a byte budget. Iteration order is layout order so the rewind
// phase processes cached tiles in the same disk order the streaming phase
// would have. Tracks recency for the LRU baseline policy.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace gstore::store {

class CachePool {
 public:
  explicit CachePool(std::uint64_t budget_bytes = 0) : budget_(budget_bytes) {}

  std::uint64_t budget() const noexcept { return budget_; }
  std::uint64_t used() const noexcept { return used_; }
  std::uint64_t free_bytes() const noexcept {
    return budget_ > used_ ? budget_ - used_ : 0;
  }
  std::size_t tile_count() const noexcept { return tiles_.size(); }
  bool contains(std::uint64_t layout_idx) const {
    return tiles_.count(layout_idx) != 0;
  }

  // Copies a tile into the pool; returns false (and stores nothing) if it
  // does not fit. Replaces an existing entry for the same tile.
  bool insert(std::uint64_t layout_idx, const std::uint8_t* data,
              std::uint64_t bytes);

  // Removes one tile; returns freed bytes (0 if absent).
  std::uint64_t erase(std::uint64_t layout_idx);

  void clear();

  // Marks a tile as used this iteration (for LRU recency).
  void touch(std::uint64_t layout_idx);

  // Evicts least-recently-touched tiles until at least `needed` bytes are
  // free. Returns bytes freed.
  std::uint64_t evict_lru(std::uint64_t needed);

  struct Entry {
    std::uint64_t layout_idx;
    const std::uint8_t* data;
    std::uint64_t bytes;
  };
  // Snapshot of entries in layout order (safe to erase entries *after*
  // iterating the snapshot, not during).
  std::vector<Entry> entries() const;

 private:
  struct Stored {
    std::vector<std::uint8_t> data;
    std::uint64_t stamp = 0;  // recency
  };
  std::map<std::uint64_t, Stored> tiles_;  // keyed by layout index (sorted)
  std::uint64_t budget_;
  std::uint64_t used_ = 0;
  std::uint64_t clock_ = 0;
};

}  // namespace gstore::store
