#include "store/caching_policy.h"

namespace gstore::store {

namespace {

class NonePolicy final : public CachingPolicy {
 public:
  bool should_cache(std::uint64_t, const tile::TileCoord&,
                    const TileAlgorithm&) const override {
    return false;
  }
  bool make_room(CachePool&, std::uint64_t, const tile::Grid&,
                 const TileAlgorithm&) override {
    return false;
  }
  void analyze(CachePool&, const tile::Grid&, const TileAlgorithm&) override {}
};

class LruPolicy final : public CachingPolicy {
 public:
  bool should_cache(std::uint64_t, const tile::TileCoord&,
                    const TileAlgorithm&) const override {
    return true;  // cache everything, recency decides evictions
  }
  bool make_room(CachePool& pool, std::uint64_t bytes, const tile::Grid&,
                 const TileAlgorithm&) override {
    pool.evict_lru(bytes);
    return pool.free_bytes() >= bytes;
  }
  void analyze(CachePool&, const tile::Grid&, const TileAlgorithm&) override {}
};

class ProactivePolicy final : public CachingPolicy {
 public:
  bool should_cache(std::uint64_t, const tile::TileCoord& coord,
                    const TileAlgorithm& algo) const override {
    return algo.tile_useful_next(coord.i, coord.j);
  }

  bool make_room(CachePool& pool, std::uint64_t bytes, const tile::Grid& grid,
                 const TileAlgorithm& algo) override {
    // First drop pool entries the oracle has since ruled out; only if that
    // is not enough does the new tile lose (we never evict useful data for
    // equally-useful data — disk order means the incumbent would be needed
    // sooner next iteration anyway, thanks to rewind).
    analyze(pool, grid, algo);
    return pool.free_bytes() >= bytes;
  }

  void analyze(CachePool& pool, const tile::Grid& grid,
               const TileAlgorithm& algo) override {
    for (const auto& e : pool.entries()) {
      const tile::TileCoord c = grid.coord_at(e.layout_idx);
      if (!algo.tile_useful_next(c.i, c.j)) pool.erase(e.layout_idx);
    }
  }
};

}  // namespace

std::unique_ptr<CachingPolicy> CachingPolicy::make(CachePolicyKind kind) {
  switch (kind) {
    case CachePolicyKind::kProactive: return std::make_unique<ProactivePolicy>();
    case CachePolicyKind::kLru: return std::make_unique<LruPolicy>();
    case CachePolicyKind::kNone: return std::make_unique<NonePolicy>();
  }
  return std::make_unique<ProactivePolicy>();
}

}  // namespace gstore::store
