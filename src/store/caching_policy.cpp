#include "store/caching_policy.h"

#include <cstdint>
#include <vector>

namespace gstore::store {

namespace {

class NonePolicy final : public CachingPolicy {
 public:
  bool should_cache(std::uint64_t, const tile::TileCoord&,
                    const TileAlgorithm&) const override {
    return false;
  }
  bool make_room(CachePool&, std::uint64_t, const tile::Grid&,
                 const TileAlgorithm&) override {
    return false;
  }
  void analyze(CachePool&, const tile::Grid&, const TileAlgorithm&) override {}
};

class LruPolicy final : public CachingPolicy {
 public:
  bool should_cache(std::uint64_t, const tile::TileCoord&,
                    const TileAlgorithm&) const override {
    return true;  // cache everything, recency decides evictions
  }
  bool make_room(CachePool& pool, std::uint64_t bytes, const tile::Grid&,
                 const TileAlgorithm&) override {
    pool.evict_lru(bytes);
    return pool.free_bytes() >= bytes;
  }
  void analyze(CachePool&, const tile::Grid&, const TileAlgorithm&) override {}
};

class ProactivePolicy final : public CachingPolicy {
 public:
  bool should_cache(std::uint64_t, const tile::TileCoord& coord,
                    const TileAlgorithm& algo) const override {
    return algo.tile_useful_next(coord.i, coord.j);
  }

  bool make_room(CachePool& pool, std::uint64_t bytes, const tile::Grid& grid,
                 const TileAlgorithm& algo) override {
    // First drop pool entries the oracle has since ruled out; only if that
    // is not enough does the new tile lose (we never evict useful data for
    // equally-useful data — disk order means the incumbent would be needed
    // sooner next iteration anyway, thanks to rewind).
    analyze(pool, grid, algo);
    return pool.free_bytes() >= bytes;
  }

  void analyze(CachePool& pool, const tile::Grid& grid,
               const TileAlgorithm& algo) override {
    // Two passes because for_each_entry holds the pool lock: collect the
    // ruled-out tiles first (reused scratch, no per-call allocation), then
    // drop them.
    victims_.clear();
    pool.for_each_entry([&](const CachePool::Entry& e) {
      const tile::TileCoord c = grid.coord_at(e.layout_idx);
      if (!algo.tile_useful_next(c.i, c.j)) victims_.push_back(e.layout_idx);
    });
    for (const std::uint64_t idx : victims_) pool.erase(idx);
  }

 private:
  std::vector<std::uint64_t> victims_;
};

}  // namespace

std::unique_ptr<CachingPolicy> CachingPolicy::make(CachePolicyKind kind) {
  switch (kind) {
    case CachePolicyKind::kProactive: return std::make_unique<ProactivePolicy>();
    case CachePolicyKind::kLru: return std::make_unique<LruPolicy>();
    case CachePolicyKind::kNone: return std::make_unique<NonePolicy>();
  }
  return std::make_unique<ProactivePolicy>();
}

}  // namespace gstore::store
