// Cost-balanced chunking of slot lists for OpenMP dynamic scheduling.
//
// Half-open index ranges over a slot list, cut so each chunk carries roughly
// equal edge cost. Dynamic scheduling over these chunks replaces
// schedule(dynamic, 1) over raw slots: on a power-law tile grid the latter
// is either dispatch overhead (swarms of near-empty tiles) or load imbalance
// (one hub tile per work item with nothing to pair it against). Shared by
// the single-job SCR engine and the multi-tenant serve scheduler.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace gstore::store {

struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

inline void cost_chunks(const std::vector<std::uint64_t>& costs,
                        std::vector<Chunk>& out) {
  out.clear();
  if (costs.empty()) return;
  int threads = 1;
#ifdef _OPENMP
  threads = omp_get_max_threads();
#endif
  std::uint64_t total = 0;
  for (const std::uint64_t c : costs) total += c;
  // ~8 chunks per thread bounds the dynamic-scheduling tail; the floor keeps
  // tiny tiles batched instead of dispatched one by one.
  const std::uint64_t target = std::max<std::uint64_t>(
      total / (8ull * static_cast<unsigned>(threads)) + 1, 4096);
  Chunk cur;
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k < costs.size(); ++k) {
    acc += costs[k];
    if (acc >= target) {
      cur.end = k + 1;
      out.push_back(cur);
      cur.begin = k + 1;
      acc = 0;
    }
  }
  if (cur.begin < costs.size()) {
    cur.end = costs.size();
    out.push_back(cur);
  }
}

}  // namespace gstore::store
