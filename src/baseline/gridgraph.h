// GridGraph-like baseline (Zhu et al., ATC'15) — the paper's closest related
// system (§VIII): 2-level hierarchical 2D partitioning on a single machine.
//
// Mapped onto this codebase, GridGraph's design corresponds to:
//   * the traditional grid layout — full matrix (both orientations of
//     undirected edges) with full-vid 8-byte tuples, i.e. our tile store
//     with `snb=false, symmetry=false`;
//   * block-granular streaming in grid order with selective scheduling;
//   * reliance on the OS page cache — approximated by the engine's LRU
//     pool (the paper's §VIII: "GridGraph depends upon Linux page-cache for
//     caching [while] G-Store exploits the properties of 2D tiles");
//   * no rewind and no algorithm-aware (proactive) caching.
//
// The class is a thin, documented configuration of the shared streaming
// machinery: the comparison in the benchmarks is then exactly about the
// paper's claims (format size + caching policy), not incidental code
// quality differences.
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.h"
#include "io/device.h"
#include "store/scr_engine.h"
#include "tile/convert.h"
#include "tile/tile_file.h"

namespace gstore::baseline {

struct GridGraphConfig {
  std::uint64_t memory_bytes = 64ull << 20;  // page-cache stand-in budget
  unsigned tile_bits = 16;
  std::uint32_t group_side = 256;
  io::DeviceConfig device;
};

// Converts `el` into the GridGraph on-disk layout at `base_path`
// (.tiles/.sei/.deg with 8-byte tuples, full matrix).
tile::ConvertStats convert_to_gridgraph(const graph::EdgeList& el,
                                        const std::string& base_path,
                                        const GridGraphConfig& config = {});

class GridGraphEngine {
 public:
  GridGraphEngine(const std::string& base_path, GridGraphConfig config = {});

  // Runs any tile algorithm under GridGraph-style execution (LRU caching,
  // no rewind, selective block scheduling).
  store::EngineStats run(store::TileAlgorithm& algo);

  tile::TileStore& tile_store() noexcept { return store_; }

 private:
  GridGraphConfig config_;
  tile::TileStore store_;
};

}  // namespace gstore::baseline
