#include "baseline/graphchi.h"

#include <algorithm>

#include "io/file.h"
#include "util/status.h"
#include "util/timer.h"

namespace gstore::baseline {

namespace {

constexpr std::uint64_t kPswMagic = 0x4753434849505357ULL;  // "GSCHIPSW"

struct PswHeader {
  std::uint64_t magic = kPswMagic;
  std::uint32_t version = 1;
  std::uint32_t shards = 0;
  std::uint64_t vertex_count = 0;
  std::uint64_t edge_count = 0;
  std::uint64_t reserved[4] = {0, 0, 0, 0};
};
static_assert(sizeof(PswHeader) == 64);

std::string shard_path(const std::string& base, std::uint32_t s) {
  return base + ".shard" + std::to_string(s);
}
std::string index_path(const std::string& base) { return base + ".psw"; }

}  // namespace

std::uint64_t build_graphchi_shards(const graph::EdgeList& el,
                                    const std::string& base_path,
                                    const GraphChiConfig& config) {
  GS_CHECK_MSG(config.shards >= 1, "need at least one shard");
  GS_CHECK_MSG(el.vertex_count() > 0, "empty graph");
  const std::uint32_t P = config.shards;
  const graph::vid_t n = el.vertex_count();
  auto interval_of = [&](graph::vid_t v) {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(v) * P) / n);
  };

  // Materialize the directed edge set (both orientations for undirected),
  // bucket by destination interval, sort each shard by source.
  std::vector<std::vector<graph::Edge>> shards(P);
  auto add = [&](graph::vid_t s, graph::vid_t d) {
    shards[interval_of(d)].push_back(graph::Edge{s, d});
  };
  for (const graph::Edge& e : el.edges()) {
    if (e.src == e.dst) continue;
    add(e.src, e.dst);
    if (el.kind() == graph::GraphKind::kUndirected) add(e.dst, e.src);
  }
  std::uint64_t total_edges = 0;
  for (auto& shard : shards) {
    std::stable_sort(shard.begin(), shard.end(),
                     [](const graph::Edge& a, const graph::Edge& b) {
                       return a.src < b.src;
                     });
    total_edges += shard.size();
  }

  // Window index: for each shard, where each source interval begins.
  std::uint64_t bytes = 0;
  {
    io::File idx(index_path(base_path), io::OpenMode::kWrite);
    PswHeader h;
    h.shards = P;
    h.vertex_count = n;
    h.edge_count = total_edges;
    idx.append(&h, sizeof(h));
    for (std::uint32_t s = 0; s < P; ++s) {
      std::vector<std::uint64_t> starts(P + 1, 0);
      for (const graph::Edge& e : shards[s]) ++starts[interval_of(e.src) + 1];
      for (std::uint32_t p = 0; p < P; ++p) starts[p + 1] += starts[p];
      idx.append(starts.data(), starts.size() * sizeof(std::uint64_t));
      bytes += starts.size() * sizeof(std::uint64_t);
    }
    idx.sync();
    bytes += sizeof(h);
  }
  for (std::uint32_t s = 0; s < P; ++s) {
    io::File f(shard_path(base_path, s), io::OpenMode::kWrite);
    if (!shards[s].empty())
      f.append(shards[s].data(), shards[s].size() * sizeof(graph::Edge));
    f.sync();
    bytes += shards[s].size() * sizeof(graph::Edge);
  }
  return bytes;
}

GraphChiEngine::GraphChiEngine(const std::string& base_path,
                               GraphChiConfig config)
    : config_(config) {
  io::File idx(index_path(base_path), io::OpenMode::kRead);
  PswHeader h;
  idx.pread_full(&h, sizeof(h), 0);
  if (h.magic != kPswMagic)
    throw FormatError("bad magic in " + index_path(base_path));
  if (h.shards != config.shards)
    throw FormatError("psw index built with " + std::to_string(h.shards) +
                      " shards, engine configured for " +
                      std::to_string(config.shards));
  vertex_count_ = static_cast<graph::vid_t>(h.vertex_count);
  edge_count_ = h.edge_count;

  const std::uint32_t P = config_.shards;
  window_start_.resize(P);
  std::uint64_t off = sizeof(h);
  for (std::uint32_t s = 0; s < P; ++s) {
    window_start_[s].resize(P + 1);
    idx.pread_full(window_start_[s].data(),
                   window_start_[s].size() * sizeof(std::uint64_t), off);
    off += window_start_[s].size() * sizeof(std::uint64_t);
  }
  for (std::uint32_t s = 0; s < P; ++s)
    shard_devices_.push_back(
        std::make_unique<io::Device>(shard_path(base_path, s), config.device));
}

void GraphChiEngine::for_interval(
    std::uint32_t p, const std::function<void(graph::vid_t, graph::vid_t)>& fn) {
  const std::uint32_t P = config_.shards;
  std::vector<graph::Edge> buf;
  auto read_edges = [&](std::uint32_t shard, std::uint64_t first,
                        std::uint64_t last) {
    if (first >= last) return;
    buf.resize(last - first);
    shard_devices_[shard]->read(buf.data(),
                                (last - first) * sizeof(graph::Edge),
                                first * sizeof(graph::Edge));
    stats_.bytes_read += (last - first) * sizeof(graph::Edge);
    ++stats_.window_reads;
    for (const graph::Edge& e : buf) fn(e.src, e.dst);
  };

  // Memory shard: all in-edges of interval p (one sequential read).
  read_edges(p, 0, window_start_[p].back());
  // Sliding windows: out-edges of interval p living in the other shards.
  for (std::uint32_t s = 0; s < P; ++s) {
    if (s == p) continue;
    read_edges(s, window_start_[s][p], window_start_[s][p + 1]);
  }
}

GraphChiStats GraphChiEngine::run_bfs(graph::vid_t root,
                                      std::vector<std::int32_t>& depth_out) {
  stats_ = GraphChiStats{};
  Timer t;
  depth_out.assign(vertex_count_, -1);
  depth_out[root] = 0;
  std::int32_t level = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::uint32_t p = 0; p < config_.shards; ++p) {
      for_interval(p, [&](graph::vid_t s, graph::vid_t d) {
        if (depth_out[s] == level && depth_out[d] == -1) {
          depth_out[d] = level + 1;
          progressed = true;
        }
      });
    }
    ++level;
    ++stats_.iterations;
  }
  stats_.elapsed_seconds = t.seconds();
  return stats_;
}

GraphChiStats GraphChiEngine::run_pagerank(
    std::uint32_t iterations, double damping,
    const std::vector<graph::degree_t>& out_degrees,
    std::vector<float>& rank_out) {
  GS_CHECK_MSG(out_degrees.size() == vertex_count_, "degree size mismatch");
  stats_ = GraphChiStats{};
  Timer t;
  rank_out.assign(vertex_count_, 1.0f / static_cast<float>(vertex_count_));
  std::vector<float> incoming(vertex_count_);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    std::fill(incoming.begin(), incoming.end(), 0.0f);
    for (std::uint32_t p = 0; p < config_.shards; ++p) {
      // Only the memory shard's in-edges accumulate (each edge is also seen
      // through a window when its source interval is processed; counting it
      // there would double-add).
      const std::uint32_t interval = p;
      for_interval(p, [&](graph::vid_t s, graph::vid_t d) {
        if (interval_of(d) != interval) return;  // window view: skip
        if (out_degrees[s] > 0)
          incoming[d] += rank_out[s] / static_cast<float>(out_degrees[s]);
      });
      (void)interval;
    }
    const float base = static_cast<float>((1.0 - damping) / vertex_count_);
    for (graph::vid_t v = 0; v < vertex_count_; ++v)
      rank_out[v] = base + static_cast<float>(damping) * incoming[v];
    ++stats_.iterations;
  }
  stats_.elapsed_seconds = t.seconds();
  return stats_;
}

GraphChiStats GraphChiEngine::run_wcc(std::vector<graph::vid_t>& label_out) {
  stats_ = GraphChiStats{};
  Timer t;
  label_out.resize(vertex_count_);
  for (graph::vid_t v = 0; v < vertex_count_; ++v) label_out[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t p = 0; p < config_.shards; ++p) {
      for_interval(p, [&](graph::vid_t s, graph::vid_t d) {
        const graph::vid_t m = std::min(label_out[s], label_out[d]);
        if (label_out[s] != m) {
          label_out[s] = m;
          changed = true;
        }
        if (label_out[d] != m) {
          label_out[d] = m;
          changed = true;
        }
      });
    }
    ++stats_.iterations;
  }
  stats_.elapsed_seconds = t.seconds();
  return stats_;
}

}  // namespace gstore::baseline
