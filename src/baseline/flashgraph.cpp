#include "baseline/flashgraph.h"

#include <algorithm>
#include <cstring>

#include "io/file.h"
#include "util/status.h"
#include "util/timer.h"

namespace gstore::baseline {

PageCache::PageCache(std::uint64_t budget_bytes, std::size_t page_bytes)
    : budget_(budget_bytes), page_bytes_(page_bytes) {
  GS_CHECK_MSG(page_bytes >= 64, "page size too small");
}

const std::uint8_t* PageCache::lookup(std::uint64_t page_id) {
  auto it = map_.find(page_id);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->data.data();
}

const std::uint8_t* PageCache::insert(std::uint64_t page_id,
                                      const std::uint8_t* data) {
  if (auto it = map_.find(page_id); it != map_.end()) {
    std::memcpy(it->second->data.data(), data, page_bytes_);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->data.data();
  }
  while (!lru_.empty() && (map_.size() + 1) * page_bytes_ > budget_) {
    map_.erase(lru_.back().page_id);
    lru_.pop_back();
  }
  Slot slot;
  slot.page_id = page_id;
  slot.data.assign(data, data + page_bytes_);
  lru_.push_front(std::move(slot));
  map_[page_id] = lru_.begin();
  return lru_.begin()->data.data();
}

FlashGraphEngine::FlashGraphEngine(const std::string& base_path,
                                   FlashGraphConfig config)
    : config_(config),
      adj_(base_path + ".adj", config.device),
      cache_(config.cache_bytes, config.page_bytes) {
  io::File beg(base_path + ".beg", io::OpenMode::kRead);
  const std::uint64_t entries = beg.size() / sizeof(std::uint64_t);
  GS_CHECK_MSG(entries >= 2, "beg-pos file too small");
  beg_pos_.resize(entries);
  beg.pread_full(beg_pos_.data(), entries * sizeof(std::uint64_t), 0);
}

void FlashGraphEngine::fetch_pages(const std::vector<std::uint64_t>& page_ids) {
  // Collect the missing pages, merge runs of consecutive pages, batch-read.
  std::vector<std::uint64_t> missing;
  for (std::uint64_t pid : page_ids) {
    if (cache_.lookup(pid) != nullptr) {
      ++stats_.cache_hits;
    } else {
      ++stats_.cache_misses;
      missing.push_back(pid);
    }
  }
  if (missing.empty()) return;
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());

  const std::size_t pb = cache_.page_bytes();
  const std::uint64_t file_size = adj_.size();
  struct Run {
    std::uint64_t first_page;
    std::size_t pages;
  };
  std::vector<Run> runs;
  for (std::uint64_t pid : missing) {
    if (!runs.empty() &&
        runs.back().first_page + runs.back().pages == pid)
      ++runs.back().pages;
    else
      runs.push_back(Run{pid, 1});
  }

  std::vector<std::vector<std::uint8_t>> buffers(runs.size());
  std::vector<io::ReadRequest> batch;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const std::uint64_t off = runs[r].first_page * pb;
    const std::uint64_t want = static_cast<std::uint64_t>(runs[r].pages) * pb;
    const std::uint64_t len = std::min<std::uint64_t>(want, file_size - off);
    buffers[r].assign(static_cast<std::size_t>(runs[r].pages) * pb, 0);
    io::ReadRequest req;
    req.offset = off;
    req.length = static_cast<std::size_t>(len);
    req.buffer = buffers[r].data();
    req.tag = r;
    batch.push_back(req);
  }
  adj_.submit(std::move(batch));
  adj_.drain();

  for (std::size_t r = 0; r < runs.size(); ++r)
    for (std::size_t k = 0; k < runs[r].pages; ++k)
      cache_.insert(runs[r].first_page + k, buffers[r].data() + k * pb);
}

void FlashGraphEngine::for_active(
    const std::vector<graph::vid_t>& active,
    const std::function<void(graph::vid_t, std::span<const graph::vid_t>)>& fn) {
  const std::size_t pb = cache_.page_bytes();
  for (std::size_t batch_start = 0; batch_start < active.size();
       batch_start += config_.batch_vertices) {
    const std::size_t batch_end =
        std::min(batch_start + config_.batch_vertices, active.size());

    // Which pages does this wave of vertices need?
    std::vector<std::uint64_t> pages;
    for (std::size_t k = batch_start; k < batch_end; ++k) {
      const graph::vid_t v = active[k];
      const std::uint64_t lo = beg_pos_[v] * sizeof(graph::vid_t);
      const std::uint64_t hi = beg_pos_[v + 1] * sizeof(graph::vid_t);
      for (std::uint64_t p = lo / pb; p * pb < hi; ++p) pages.push_back(p);
      if (lo == hi) continue;
    }
    fetch_pages(pages);

    // Assemble each vertex's adjacency from the (now resident) pages.
    for (std::size_t k = batch_start; k < batch_end; ++k) {
      const graph::vid_t v = active[k];
      const std::uint64_t lo = beg_pos_[v] * sizeof(graph::vid_t);
      const std::uint64_t hi = beg_pos_[v + 1] * sizeof(graph::vid_t);
      const std::size_t n = static_cast<std::size_t>(hi - lo);
      if (n == 0) {
        fn(v, {});
        continue;
      }
      scratch_.resize(n / sizeof(graph::vid_t));
      auto* out = reinterpret_cast<std::uint8_t*>(scratch_.data());
      std::uint64_t pos = lo;
      while (pos < hi) {
        const std::uint64_t pid = pos / pb;
        const std::uint64_t in_page = pos % pb;
        const std::size_t take =
            static_cast<std::size_t>(std::min<std::uint64_t>(pb - in_page,
                                                             hi - pos));
        const std::uint8_t* page = cache_.lookup(pid);
        if (page == nullptr) {
          // Evicted between fetch and assembly (cache smaller than one
          // batch's footprint): re-read the page synchronously.
          ++stats_.cache_misses;
          std::vector<std::uint8_t> tmp(pb, 0);
          const std::uint64_t off = pid * pb;
          const std::uint64_t len =
              std::min<std::uint64_t>(pb, adj_.size() - off);
          adj_.read(tmp.data(), static_cast<std::size_t>(len), off);
          page = cache_.insert(pid, tmp.data());
        }
        std::memcpy(out + (pos - lo), page + in_page, take);
        pos += take;
      }
      fn(v, std::span<const graph::vid_t>(scratch_.data(), scratch_.size()));
    }
  }
}

FlashGraphStats FlashGraphEngine::run_bfs(graph::vid_t root,
                                          std::vector<std::int32_t>& depth_out) {
  stats_ = FlashGraphStats{};
  adj_.reset_stats();
  Timer t;
  depth_out.assign(vertex_count(), -1);
  depth_out[root] = 0;
  std::vector<graph::vid_t> frontier{root};
  std::int32_t level = 0;
  while (!frontier.empty()) {
    std::vector<graph::vid_t> next;
    for_active(frontier, [&](graph::vid_t, std::span<const graph::vid_t> nbrs) {
      for (graph::vid_t w : nbrs) {
        if (depth_out[w] == -1) {
          depth_out[w] = level + 1;
          next.push_back(w);
        }
      }
    });
    frontier = std::move(next);
    std::sort(frontier.begin(), frontier.end());  // sequentialize next I/O wave
    ++level;
    ++stats_.iterations;
  }
  stats_.bytes_read = adj_.stats().bytes_read;
  stats_.elapsed_seconds = t.seconds();
  return stats_;
}

FlashGraphStats FlashGraphEngine::run_pagerank(std::uint32_t iterations,
                                               double damping,
                                               std::vector<float>& rank_out) {
  stats_ = FlashGraphStats{};
  adj_.reset_stats();
  Timer t;
  const graph::vid_t n = vertex_count();
  rank_out.assign(n, 1.0f / static_cast<float>(n));
  std::vector<float> incoming(n);
  std::vector<graph::vid_t> all(n);
  for (graph::vid_t v = 0; v < n; ++v) all[v] = v;

  for (std::uint32_t it = 0; it < iterations; ++it) {
    std::fill(incoming.begin(), incoming.end(), 0.0f);
    for_active(all, [&](graph::vid_t v, std::span<const graph::vid_t> nbrs) {
      if (nbrs.empty()) return;
      const float c = rank_out[v] / static_cast<float>(nbrs.size());
      for (graph::vid_t w : nbrs) incoming[w] += c;
    });
    const float base = static_cast<float>((1.0 - damping) / n);
    for (graph::vid_t v = 0; v < n; ++v)
      rank_out[v] = base + static_cast<float>(damping) * incoming[v];
    ++stats_.iterations;
  }
  stats_.bytes_read = adj_.stats().bytes_read;
  stats_.elapsed_seconds = t.seconds();
  return stats_;
}

FlashGraphStats FlashGraphEngine::run_wcc(std::vector<graph::vid_t>& label_out) {
  stats_ = FlashGraphStats{};
  adj_.reset_stats();
  Timer t;
  const graph::vid_t n = vertex_count();
  label_out.resize(n);
  for (graph::vid_t v = 0; v < n; ++v) label_out[v] = v;
  std::vector<graph::vid_t> all(n);
  for (graph::vid_t v = 0; v < n; ++v) all[v] = v;

  bool changed = true;
  while (changed) {
    changed = false;
    for_active(all, [&](graph::vid_t v, std::span<const graph::vid_t> nbrs) {
      graph::vid_t m = label_out[v];
      for (graph::vid_t w : nbrs) m = std::min(m, label_out[w]);
      if (m < label_out[v]) {
        label_out[v] = m;
        changed = true;
      }
      // Algorithm-2 contrast: FlashGraph-style label propagation also pushes
      // the new minimum outward so convergence matches the reference.
      for (graph::vid_t w : nbrs) {
        if (m < label_out[w]) {
          label_out[w] = m;
          changed = true;
        }
      }
    });
    ++stats_.iterations;
  }
  stats_.bytes_read = adj_.stats().bytes_read;
  stats_.elapsed_seconds = t.seconds();
  return stats_;
}

}  // namespace gstore::baseline
