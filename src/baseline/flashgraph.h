// FlashGraph-like baseline: semi-external, vertex-centric CSR engine
// (Zheng et al., FAST'15; the paper's Fig 9 comparison engine).
//
// Faithful to the architecture the paper measures against:
//  * CSR on SSD: beg-pos array in memory, adjacency lists on disk;
//  * selective I/O — only active vertices' adjacency ranges are fetched,
//    adjacent requests merged, issued as batched async reads;
//  * an LRU page cache in front of the adjacency file (the paper contrasts
//    this LRU caching with G-Store's proactive policy);
//  * undirected graphs store both directions in the CSR (no symmetry
//    saving), directed graphs fetch out-edges.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "io/device.h"

namespace gstore::baseline {

struct FlashGraphConfig {
  std::uint64_t cache_bytes = 64ull << 20;
  std::size_t page_bytes = 4096;
  std::size_t batch_vertices = 4096;  // active vertices fetched per wave
  io::DeviceConfig device;
};

struct FlashGraphStats {
  std::uint32_t iterations = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t cache_hits = 0;    // page lookups served from cache
  std::uint64_t cache_misses = 0;
  double elapsed_seconds = 0;
};

// LRU page cache over the adjacency file.
class PageCache {
 public:
  PageCache(std::uint64_t budget_bytes, std::size_t page_bytes);

  // Returns the page buffer if resident (and refreshes recency).
  const std::uint8_t* lookup(std::uint64_t page_id);
  // Inserts a page (evicting LRU pages as needed); returns its buffer.
  const std::uint8_t* insert(std::uint64_t page_id, const std::uint8_t* data);

  std::size_t page_bytes() const noexcept { return page_bytes_; }
  std::size_t resident_pages() const noexcept { return map_.size(); }

 private:
  struct Slot {
    std::uint64_t page_id;
    std::vector<std::uint8_t> data;
  };
  std::uint64_t budget_;
  std::size_t page_bytes_;
  std::list<Slot> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Slot>::iterator> map_;
};

class FlashGraphEngine {
 public:
  // `base_path` must point at files written by tile::convert_to_csr_file
  // (<base>.beg / <base>.adj).
  FlashGraphEngine(const std::string& base_path, FlashGraphConfig config = {});

  graph::vid_t vertex_count() const noexcept {
    return static_cast<graph::vid_t>(beg_pos_.size() - 1);
  }

  FlashGraphStats run_bfs(graph::vid_t root, std::vector<std::int32_t>& depth_out);
  FlashGraphStats run_pagerank(std::uint32_t iterations, double damping,
                               std::vector<float>& rank_out);
  FlashGraphStats run_wcc(std::vector<graph::vid_t>& label_out);

 private:
  // Fetches adjacency lists for a batch of active vertices (selective,
  // merged, batched through the async engine + page cache) and invokes
  // fn(v, neighbors) for each.
  void for_active(
      const std::vector<graph::vid_t>& active,
      const std::function<void(graph::vid_t, std::span<const graph::vid_t>)>& fn);

  // Ensures pages [first,last] are resident; returns nothing (pages land in
  // the cache). Missing pages are fetched in one batched submit.
  void fetch_pages(const std::vector<std::uint64_t>& page_ids);

  FlashGraphConfig config_;
  std::vector<std::uint64_t> beg_pos_;  // in-memory (semi-external)
  io::Device adj_;
  PageCache cache_;
  FlashGraphStats stats_;
  std::vector<graph::vid_t> scratch_;  // assembled adjacency for one vertex
};

}  // namespace gstore::baseline
