// GraphChi-like baseline (Kyrola et al., OSDI'12) — the first system the
// paper's related work names: out-of-core graph processing on one machine
// via Parallel Sliding Windows (PSW), optimized for *sequential HDD
// bandwidth* rather than SSD random I/O.
//
// Faithful to the PSW architecture:
//  * vertices are split into P intervals; shard p holds every edge whose
//    destination falls in interval p, sorted by source;
//  * processing interval p loads its "memory shard" (shard p, the in-edges)
//    completely, plus one contiguous *sliding window* from every other
//    shard — the edges whose source lies in interval p. Because shards are
//    source-sorted, each window is a single sequential read whose offset
//    only advances across intervals;
//  * so one full iteration reads every edge ~2× (once as in-edge, once as
//    out-edge) in P×P sequential chunks — the paper's contrast is that
//    G-Store reads each edge once from half-sized tiles.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"
#include "io/device.h"

namespace gstore::baseline {

struct GraphChiConfig {
  std::uint32_t shards = 8;  // P
  io::DeviceConfig device;
};

struct GraphChiStats {
  std::uint32_t iterations = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t window_reads = 0;  // sequential window fetches issued
  double elapsed_seconds = 0;
};

// Builds the shard files: <base>.shard<p> plus <base>.psw (index).
// Returns bytes written. Undirected graphs are sharded with both edge
// orientations (each undirected edge appears as two directed edges), the
// standard GraphChi representation.
std::uint64_t build_graphchi_shards(const graph::EdgeList& el,
                                    const std::string& base_path,
                                    const GraphChiConfig& config = {});

class GraphChiEngine {
 public:
  GraphChiEngine(const std::string& base_path, GraphChiConfig config = {});

  graph::vid_t vertex_count() const noexcept { return vertex_count_; }
  std::uint32_t shard_count() const noexcept { return config_.shards; }

  GraphChiStats run_bfs(graph::vid_t root, std::vector<std::int32_t>& depth_out);
  GraphChiStats run_pagerank(std::uint32_t iterations, double damping,
                             const std::vector<graph::degree_t>& out_degrees,
                             std::vector<float>& rank_out);
  GraphChiStats run_wcc(std::vector<graph::vid_t>& label_out);

 private:
  // Runs fn(src, dst) over every edge incident to interval p: the memory
  // shard (in-edges) and all sliding windows (out-edges). Each edge incident
  // to two intervals is seen when either is processed.
  void for_interval(std::uint32_t p,
                    const std::function<void(graph::vid_t, graph::vid_t)>& fn);

  std::uint32_t interval_of(graph::vid_t v) const {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(v) * config_.shards) / vertex_count_);
  }

  GraphChiConfig config_;
  graph::vid_t vertex_count_ = 0;
  std::uint64_t edge_count_ = 0;
  // window_start_[s][p] = edge index within shard s where sources from
  // interval p begin (size shards × (shards+1)).
  std::vector<std::vector<std::uint64_t>> window_start_;
  std::vector<std::unique_ptr<io::Device>> shard_devices_;
  GraphChiStats stats_;
};

}  // namespace gstore::baseline
