#include "baseline/xstream.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/aligned_buffer.h"
#include "util/status.h"
#include "util/timer.h"

namespace gstore::baseline {

namespace {
constexpr std::size_t kUpdateFlushThreshold = 1u << 18;  // records per partition
}

std::uint64_t write_xstream_edges(const std::string& path,
                                  const graph::EdgeList& el,
                                  std::size_t tuple_bytes) {
  GS_CHECK_MSG(tuple_bytes == 8 || tuple_bytes == 16,
               "xstream tuple size must be 8 or 16 bytes");
  io::File f(path, io::OpenMode::kWrite);

  const bool both = el.kind() == graph::GraphKind::kUndirected;
  std::vector<std::uint8_t> buf;
  buf.reserve(1u << 20);
  auto put_tuple = [&](graph::vid_t s, graph::vid_t d) {
    if (tuple_bytes == 8) {
      const std::uint32_t t[2] = {s, d};
      const auto* p = reinterpret_cast<const std::uint8_t*>(t);
      buf.insert(buf.end(), p, p + 8);
    } else {
      const std::uint64_t t[2] = {s, d};
      const auto* p = reinterpret_cast<const std::uint8_t*>(t);
      buf.insert(buf.end(), p, p + 16);
    }
    if (buf.size() >= (1u << 20)) {
      f.append(buf.data(), buf.size());
      buf.clear();
    }
  };

  std::uint64_t written_tuples = 0;
  for (const graph::Edge& e : el.edges()) {
    put_tuple(e.src, e.dst);
    ++written_tuples;
    if (both && e.src != e.dst) {
      put_tuple(e.dst, e.src);
      ++written_tuples;
    }
  }
  if (!buf.empty()) f.append(buf.data(), buf.size());
  f.sync();
  return written_tuples * tuple_bytes;
}

std::uint64_t xstream_storage_bytes(std::uint64_t vertex_count,
                                    std::uint64_t edge_count, bool undirected) {
  const std::uint64_t tuple =
      vertex_count > (std::uint64_t{1} << 32) ? 16 : 8;
  return (undirected ? 2 * edge_count : edge_count) * tuple;
}

XStreamEngine::XStreamEngine(std::string edge_path, std::string workdir,
                             graph::vid_t vertex_count,
                             std::uint64_t tuple_count, XStreamConfig config)
    : edge_path_(std::move(edge_path)),
      workdir_(std::move(workdir)),
      vertex_count_(vertex_count),
      tuple_count_(tuple_count),
      config_(config),
      edges_(edge_path_, config.device) {
  GS_CHECK_MSG(config_.partitions >= 1, "need at least one streaming partition");
  GS_CHECK_MSG(vertex_count >= 1, "empty vertex set");
  update_buf_.resize(config_.partitions);
  update_counts_.assign(config_.partitions, 0);
}

void XStreamEngine::for_each_edge(
    const std::function<void(graph::vid_t, graph::vid_t)>& fn) {
  const std::size_t tb = config_.tuple_bytes;
  const std::uint64_t total_bytes = tuple_count_ * tb;
  std::vector<std::uint8_t> chunk(config_.chunk_bytes - config_.chunk_bytes % tb);
  std::uint64_t off = 0;
  while (off < total_bytes) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(chunk.size(),
                                                         total_bytes - off));
    edges_.read(chunk.data(), n, off);
    stats_.edge_bytes_read += n;
    for (std::size_t p = 0; p + tb <= n; p += tb) {
      graph::vid_t s, d;
      if (tb == 8) {
        std::uint32_t t[2];
        std::memcpy(t, chunk.data() + p, 8);
        s = t[0];
        d = t[1];
      } else {
        std::uint64_t t[2];
        std::memcpy(t, chunk.data() + p, 16);
        s = static_cast<graph::vid_t>(t[0]);
        d = static_cast<graph::vid_t>(t[1]);
      }
      fn(s, d);
    }
    off += n;
  }
}

void XStreamEngine::reset_update_files() {
  update_files_.clear();
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    update_files_.emplace_back(workdir_ + "/updates." + std::to_string(p),
                               io::OpenMode::kWrite);
    update_buf_[p].clear();
    update_counts_[p] = 0;
  }
}

void XStreamEngine::emit(std::uint32_t part, Update u) {
  auto& buf = update_buf_[part];
  buf.push_back(u);
  if (buf.size() >= kUpdateFlushThreshold) {
    update_files_[part].append(buf.data(), buf.size() * sizeof(Update));
    stats_.update_bytes_written += buf.size() * sizeof(Update);
    update_counts_[part] += buf.size();
    buf.clear();
  }
}

void XStreamEngine::flush_updates() {
  for (std::uint32_t p = 0; p < config_.partitions; ++p) {
    auto& buf = update_buf_[p];
    if (buf.empty()) continue;
    update_files_[p].append(buf.data(), buf.size() * sizeof(Update));
    stats_.update_bytes_written += buf.size() * sizeof(Update);
    update_counts_[p] += buf.size();
    buf.clear();
  }
}

void XStreamEngine::for_each_update(std::uint32_t part,
                                    const std::function<void(Update)>& fn) {
  io::File f(workdir_ + "/updates." + std::to_string(part), io::OpenMode::kRead);
  const std::uint64_t total = update_counts_[part] * sizeof(Update);
  std::vector<std::uint8_t> chunk(config_.chunk_bytes -
                                  config_.chunk_bytes % sizeof(Update));
  std::uint64_t off = 0;
  while (off < total) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk.size(), total - off));
    f.pread_full(chunk.data(), n, off);
    stats_.update_bytes_read += n;
    for (std::size_t p = 0; p + sizeof(Update) <= n; p += sizeof(Update)) {
      Update u;
      std::memcpy(&u, chunk.data() + p, sizeof(Update));
      fn(u);
    }
    off += n;
  }
}

XStreamStats XStreamEngine::run_bfs(graph::vid_t root,
                                    std::vector<std::int32_t>& depth_out) {
  stats_ = XStreamStats{};
  Timer t;
  depth_out.assign(vertex_count_, -1);
  depth_out[root] = 0;
  std::int32_t level = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    reset_update_files();
    // Scatter: edges whose source is on the frontier emit a visit update.
    for_each_edge([&](graph::vid_t s, graph::vid_t d) {
      if (depth_out[s] == level && depth_out[d] == -1)
        emit(partition_of(d), Update{d, 0});
    });
    flush_updates();
    // Gather/apply per streaming partition.
    for (std::uint32_t p = 0; p < config_.partitions; ++p) {
      for_each_update(p, [&](Update u) {
        if (depth_out[u.target] == -1) {
          depth_out[u.target] = level + 1;
          progressed = true;
        }
      });
    }
    ++level;
    ++stats_.iterations;
  }
  stats_.elapsed_seconds = t.seconds();
  return stats_;
}

XStreamStats XStreamEngine::run_pagerank(
    std::uint32_t iterations, double damping,
    const std::vector<graph::degree_t>& degrees, std::vector<float>& rank_out) {
  GS_CHECK_MSG(degrees.size() == vertex_count_, "degree array size mismatch");
  stats_ = XStreamStats{};
  Timer t;
  rank_out.assign(vertex_count_, 1.0f / static_cast<float>(vertex_count_));
  std::vector<float> incoming(vertex_count_);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    reset_update_files();
    // Scatter: every edge forwards rank/degree to its head.
    for_each_edge([&](graph::vid_t s, graph::vid_t d) {
      if (degrees[s] == 0) return;
      const float c = rank_out[s] / static_cast<float>(degrees[s]);
      std::uint32_t bits;
      std::memcpy(&bits, &c, sizeof(bits));
      emit(partition_of(d), Update{d, bits});
    });
    flush_updates();
    std::fill(incoming.begin(), incoming.end(), 0.0f);
    for (std::uint32_t p = 0; p < config_.partitions; ++p) {
      for_each_update(p, [&](Update u) {
        float c;
        std::memcpy(&c, &u.payload, sizeof(c));
        incoming[u.target] += c;
      });
    }
    const float base = static_cast<float>((1.0 - damping) / vertex_count_);
    for (graph::vid_t v = 0; v < vertex_count_; ++v)
      rank_out[v] = base + static_cast<float>(damping) * incoming[v];
    ++stats_.iterations;
  }
  stats_.elapsed_seconds = t.seconds();
  return stats_;
}

XStreamStats XStreamEngine::run_wcc(std::vector<graph::vid_t>& label_out) {
  stats_ = XStreamStats{};
  Timer t;
  label_out.resize(vertex_count_);
  for (graph::vid_t v = 0; v < vertex_count_; ++v) label_out[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    reset_update_files();
    for_each_edge([&](graph::vid_t s, graph::vid_t d) {
      if (label_out[s] < label_out[d])
        emit(partition_of(d), Update{d, label_out[s]});
    });
    flush_updates();
    for (std::uint32_t p = 0; p < config_.partitions; ++p) {
      for_each_update(p, [&](Update u) {
        if (u.payload < label_out[u.target]) {
          label_out[u.target] = u.payload;
          changed = true;
        }
      });
    }
    ++stats_.iterations;
  }
  stats_.elapsed_seconds = t.seconds();
  return stats_;
}

}  // namespace gstore::baseline
