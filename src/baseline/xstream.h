// X-Stream-like baseline: fully-external, edge-centric scatter–gather–apply
// (Roy et al., SOSP'13; the paper's §VII-B comparison engine).
//
// Faithful to the architecture the paper measures against:
//  * the graph lives on disk as a flat tuple list (8B tuples for <2^32
//    vertices, 16B otherwise — Fig 2a compares the two);
//  * undirected graphs store BOTH directions (no symmetry saving — this is
//    the 2-4× storage gap Table II reports);
//  * every iteration streams the full edge list (scatter), writes updates to
//    an on-disk update file, then streams the updates back (gather/apply);
//  * vertex state is partitioned into streaming partitions so the state
//    touched while applying one partition's updates stays cache-resident.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"
#include "io/device.h"

namespace gstore::baseline {

struct XStreamConfig {
  std::size_t tuple_bytes = 8;          // 8 or 16 (Fig 2a)
  std::size_t chunk_bytes = 4ull << 20;  // streaming read granularity
  std::uint32_t partitions = 1;          // streaming partitions
  io::DeviceConfig device;               // bandwidth emulation for Fig 15
};

struct XStreamStats {
  std::uint32_t iterations = 0;
  std::uint64_t edge_bytes_read = 0;
  std::uint64_t update_bytes_written = 0;
  std::uint64_t update_bytes_read = 0;
  double elapsed_seconds = 0;
};

// Writes the on-disk tuple list X-Stream streams. Undirected graphs write
// each edge in both orientations. Returns bytes written.
std::uint64_t write_xstream_edges(const std::string& path,
                                  const graph::EdgeList& el,
                                  std::size_t tuple_bytes);

// Analytic size of the X-Stream representation (Table II "Edge List Size").
std::uint64_t xstream_storage_bytes(std::uint64_t vertex_count,
                                    std::uint64_t edge_count, bool undirected);

class XStreamEngine {
 public:
  // `edge_path` must have been produced by write_xstream_edges with the same
  // tuple size; `workdir` holds the per-iteration update files.
  XStreamEngine(std::string edge_path, std::string workdir,
                graph::vid_t vertex_count, std::uint64_t tuple_count,
                XStreamConfig config = {});

  XStreamStats run_bfs(graph::vid_t root, std::vector<std::int32_t>& depth_out);
  XStreamStats run_pagerank(std::uint32_t iterations, double damping,
                            const std::vector<graph::degree_t>& degrees,
                            std::vector<float>& rank_out);
  XStreamStats run_wcc(std::vector<graph::vid_t>& label_out);

 private:
  // One (target, payload) update record emitted by the scatter phase.
  struct Update {
    graph::vid_t target = 0;
    std::uint32_t payload = 0;
  };

  // Streams every edge tuple from disk and invokes fn(src, dst).
  void for_each_edge(
      const std::function<void(graph::vid_t, graph::vid_t)>& fn);

  std::uint32_t partition_of(graph::vid_t v) const {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(v) * config_.partitions) / vertex_count_);
  }

  // Scatter-side buffered appends to the per-partition update files.
  void emit(std::uint32_t part, Update u);
  void flush_updates();
  // Gather side: streams partition `part`'s update file through fn.
  void for_each_update(std::uint32_t part,
                       const std::function<void(Update)>& fn);
  void reset_update_files();

  std::string edge_path_;
  std::string workdir_;
  graph::vid_t vertex_count_;
  std::uint64_t tuple_count_;
  XStreamConfig config_;
  io::Device edges_;
  XStreamStats stats_;

  std::vector<std::vector<Update>> update_buf_;  // per-partition append buffer
  std::vector<io::File> update_files_;
  std::vector<std::uint64_t> update_counts_;
};

}  // namespace gstore::baseline
