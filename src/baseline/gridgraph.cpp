#include "baseline/gridgraph.h"

namespace gstore::baseline {

tile::ConvertStats convert_to_gridgraph(const graph::EdgeList& el,
                                        const std::string& base_path,
                                        const GridGraphConfig& config) {
  tile::ConvertOptions copt;
  copt.tile_bits = config.tile_bits;
  copt.group_side = config.group_side;
  copt.snb = false;      // 8-byte full-vid tuples
  copt.symmetry = false; // both orientations of undirected edges
  return tile::convert_to_tiles(el, base_path, copt);
}

GridGraphEngine::GridGraphEngine(const std::string& base_path,
                                 GridGraphConfig config)
    : config_(config), store_(tile::TileStore::open(base_path, config.device)) {}

store::EngineStats GridGraphEngine::run(store::TileAlgorithm& algo) {
  store::EngineConfig cfg;
  cfg.stream_memory_bytes = config_.memory_bytes;
  cfg.segment_bytes =
      std::max<std::uint64_t>(config_.memory_bytes / 16, 64 << 10);
  cfg.policy = store::CachePolicyKind::kLru;  // page-cache-like, not proactive
  // Cached blocks are served before streaming (the engine's only cache-hit
  // path); the *policy* — recency instead of algorithmic metadata — is what
  // distinguishes this baseline, per the paper's §VIII comparison.
  cfg.rewind = true;
  cfg.selective_fetch = true;  // block-level selective scheduling
  return store::ScrEngine(store_, cfg).run(algo);
}

}  // namespace gstore::baseline
