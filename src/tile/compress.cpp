#include "tile/compress.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/checked.h"
#include "util/dcheck.h"
#include "util/status.h"

namespace gstore::tile {

namespace {

// ---- varints (LEB128, shared by kDelta/kRuns/kHybrid) ----------------------

void put_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

unsigned varint_len(std::uint32_t v) {
  unsigned n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::uint32_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint32_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= in.size()) throw FormatError("truncated varint in tile payload");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint32_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 28) throw FormatError("varint overflow in tile payload");
  }
}

// ---- bit packing -----------------------------------------------------------

// OR-writes `bits` (≤16) of `v` at bit offset `bitpos` of a zeroed buffer.
void write_bits(std::uint8_t* p, std::uint64_t bitpos, std::uint32_t v,
                unsigned bits) {
  const std::size_t i = static_cast<std::size_t>(bitpos >> 3);
  const unsigned off = static_cast<unsigned>(bitpos & 7);
  const std::uint32_t w = v << off;  // ≤ 16 + 7 = 23 significant bits
  p[i] |= static_cast<std::uint8_t>(w);
  if (bits + off > 8) p[i + 1] |= static_cast<std::uint8_t>(w >> 8);
  if (bits + off > 16) p[i + 2] |= static_cast<std::uint8_t>(w >> 16);
}

// Reads `bits` (≤16) at `bitpos` byte-by-byte; never touches p[avail..].
// Caller guarantees bitpos + bits <= avail * 8.
std::uint32_t read_bits_tail(const std::uint8_t* p, std::size_t avail,
                             std::uint64_t bitpos, std::uint32_t mask) {
  const std::size_t i = static_cast<std::size_t>(bitpos >> 3);
  std::uint32_t v = p[i];
  if (i + 1 < avail) v |= static_cast<std::uint32_t>(p[i + 1]) << 8;
  if (i + 2 < avail) v |= static_cast<std::uint32_t>(p[i + 2]) << 16;
  return (v >> (bitpos & 7)) & mask;
}

// Widen-decodes `count` values starting at element `start` of a bit-packed
// plane into global ids. `avail` is the byte distance from the plane start to
// the end of the body: the bulk loop reads 8-byte windows that may overhang
// the plane into later payload bytes (masked off) but never past the body.
void unpack_plane(const std::uint8_t* p, std::size_t avail, std::uint64_t start,
                  std::size_t count, unsigned bits, graph::vid_t base,
                  graph::vid_t* out) {
  if (bits == 16) {
    const std::uint8_t* q = p + start * 2;
    for (std::size_t k = 0; k < count; ++k) {
      std::uint16_t v;
      std::memcpy(&v, q + k * 2, 2);
      out[k] = base + v;
    }
    return;
  }
  if (bits == 8) {
    const std::uint8_t* q = p + start;
    for (std::size_t k = 0; k < count; ++k) out[k] = base + q[k];
    return;
  }
  const std::uint32_t mask = (1u << bits) - 1u;
  // Elements whose full 8-byte load window stays inside `avail` bytes.
  std::size_t bulk = 0;
  if (avail >= 8) {
    const std::uint64_t last_bit = (static_cast<std::uint64_t>(avail) - 8) * 8;
    for (std::size_t k = 0; k < count; ++k) {
      if ((start + k) * bits > last_bit) break;
      ++bulk;
    }
  }
  for (std::size_t k = 0; k < bulk; ++k) {
    const std::uint64_t bitpos = (start + k) * bits;
    std::uint64_t w;
    std::memcpy(&w, p + (bitpos >> 3), 8);
    out[k] = base + static_cast<graph::vid_t>((w >> (bitpos & 7)) & mask);
  }
  for (std::size_t k = bulk; k < count; ++k) {
    const std::uint64_t bitpos = (start + k) * bits;
    out[k] = base + read_bits_tail(p, avail, bitpos, mask);
  }
}

// After the last declared edge, only zero padding (< 4 bytes) may remain.
void check_zero_tail(std::span<const std::uint8_t> body, std::size_t pos) {
  if (body.size() < pos || body.size() - pos >= kTilePayloadAlign)
    throw FormatError("trailing bytes after tile payload body");
  for (std::size_t i = pos; i < body.size(); ++i)
    if (body[i] != 0) throw FormatError("nonzero tile payload padding");
}

// ---- encoders --------------------------------------------------------------

void append_header(std::vector<std::uint8_t>& out, TileCodec codec,
                   unsigned src_bits, unsigned dst_bits, std::size_t n) {
  TilePayloadHeader h;
  h.codec = static_cast<std::uint8_t>(codec);
  h.src_bits = static_cast<std::uint8_t>(src_bits);
  h.dst_bits = static_cast<std::uint8_t>(dst_bits);
  h.edge_count = static_cast<std::uint32_t>(n);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&h);
  out.insert(out.end(), p, p + sizeof(h));
}

void pad_payload(std::vector<std::uint8_t>& out) {
  while (out.size() % kTilePayloadAlign != 0) out.push_back(0);
}

std::vector<std::uint8_t> encode_raw(std::span<const SnbEdge> edges) {
  std::vector<std::uint8_t> out;
  out.reserve(kTilePayloadHeaderBytes + edges.size() * sizeof(SnbEdge));
  append_header(out, TileCodec::kRaw, 0, 0, edges.size());
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(edges.data());
  out.insert(out.end(), bytes, bytes + edges.size() * sizeof(SnbEdge));
  return out;  // 8 + 4n is already 4-aligned
}

std::vector<std::uint8_t> encode_delta(std::span<const SnbEdge> edges) {
  std::vector<std::uint8_t> out;
  out.reserve(kTilePayloadHeaderBytes + edges.size() * 2 + 16);
  append_header(out, TileCodec::kDelta, 0, 0, edges.size());
  std::uint16_t prev_src = 0;
  std::uint16_t prev_dst = 0;
  for (const SnbEdge& e : edges) {
    const std::uint32_t dsrc = static_cast<std::uint16_t>(e.src16 - prev_src);
    put_varint(out, dsrc);
    if (dsrc == 0) {
      // Same source row: sorted destinations are increasing → small delta.
      put_varint(out, static_cast<std::uint16_t>(e.dst16 - prev_dst));
    } else {
      put_varint(out, e.dst16);
    }
    prev_src = e.src16;
    prev_dst = e.dst16;
  }
  pad_payload(out);
  return out;
}

std::vector<std::uint8_t> encode_packed(std::span<const SnbEdge> edges) {
  std::uint32_t smax = 0, dmax = 0;
  for (const SnbEdge& e : edges) {
    smax = std::max<std::uint32_t>(smax, e.src16);
    dmax = std::max<std::uint32_t>(dmax, e.dst16);
  }
  const unsigned src_bits = std::max(1u, static_cast<unsigned>(std::bit_width(smax)));
  const unsigned dst_bits = std::max(1u, static_cast<unsigned>(std::bit_width(dmax)));
  const std::size_t n = edges.size();
  std::vector<std::uint8_t> out;
  append_header(out, TileCodec::kPacked, src_bits, dst_bits, n);
  const std::size_t src_plane = (n * src_bits + 7) / 8;
  const std::size_t dst_plane = (n * dst_bits + 7) / 8;
  out.resize(kTilePayloadHeaderBytes + src_plane + dst_plane, 0);
  std::uint8_t* sp = out.data() + kTilePayloadHeaderBytes;
  std::uint8_t* dp = sp + src_plane;
  std::uint64_t sbit = 0, dbit = 0;
  for (const SnbEdge& e : edges) {
    write_bits(sp, sbit, e.src16, src_bits);
    write_bits(dp, dbit, e.dst16, dst_bits);
    sbit += src_bits;
    dbit += dst_bits;
  }
  pad_payload(out);
  return out;
}

// Scans row [i, j) (one source) and calls fn(gap, len) per (gap, run) item:
// the item covers `len` consecutive destinations starting at prev_end + gap
// (mod 2^16), where prev_end is one past the previous item (0 at row start).
// Returns the item count.
template <typename Fn>
std::uint32_t scan_row_items(std::span<const SnbEdge> edges, std::size_t i,
                             std::size_t j, Fn&& fn) {
  std::uint32_t items = 0;
  std::uint32_t prev_end = 0;
  std::size_t k = i;
  while (k < j) {
    const std::uint32_t d = edges[k].dst16;
    std::uint64_t len = 1;
    // Extends while destinations are consecutive ascending; never crosses
    // 65535 because a dst16 can't equal d + len past it.
    while (k + len < j && edges[k + len].dst16 == d + len) ++len;
    fn((d - prev_end) & 0xFFFFu, len);
    prev_end = d + static_cast<std::uint32_t>(len);
    k += len;
    ++items;
  }
  return items;
}

std::vector<std::uint8_t> encode_runs(std::span<const SnbEdge> edges) {
  std::vector<std::uint8_t> out;
  out.reserve(kTilePayloadHeaderBytes + edges.size() * 2 + 16);
  append_header(out, TileCodec::kRuns, 0, 0, edges.size());
  std::uint16_t prev_src = 0;
  std::size_t i = 0;
  while (i < edges.size()) {
    const std::uint16_t s = edges[i].src16;
    std::size_t j = i;
    while (j < edges.size() && edges[j].src16 == s) ++j;
    const std::uint32_t items =
        scan_row_items(edges, i, j, [](std::uint32_t, std::uint64_t) {});
    put_varint(out, static_cast<std::uint16_t>(s - prev_src));
    put_varint(out, items);
    scan_row_items(edges, i, j, [&](std::uint32_t gap, std::uint64_t len) {
      put_varint(out, gap);
      put_varint(out, static_cast<std::uint32_t>(len - 1));
    });
    prev_src = s;
    i = j;
  }
  pad_payload(out);
  return out;
}

std::vector<std::uint8_t> encode_hybrid(std::span<const SnbEdge> edges) {
  std::uint32_t dmax = 0;
  for (const SnbEdge& e : edges) dmax = std::max<std::uint32_t>(dmax, e.dst16);
  const unsigned dst_bits = std::max(1u, static_cast<unsigned>(std::bit_width(dmax)));
  std::vector<std::uint8_t> out;
  out.reserve(kTilePayloadHeaderBytes + edges.size() * 2 + 16);
  append_header(out, TileCodec::kHybrid, 0, dst_bits, edges.size());
  std::uint16_t prev_src = 0;
  std::size_t i = 0;
  while (i < edges.size()) {
    const std::uint16_t s = edges[i].src16;
    std::size_t j = i;
    while (j < edges.size() && edges[j].src16 == s) ++j;
    const std::uint32_t count = static_cast<std::uint32_t>(j - i);
    std::uint64_t runs_size = 0;
    scan_row_items(edges, i, j, [&](std::uint32_t gap, std::uint64_t len) {
      runs_size += varint_len(gap) +
                   varint_len(static_cast<std::uint32_t>(len - 1));
    });
    const std::uint64_t packed_size =
        (static_cast<std::uint64_t>(count) * dst_bits + 7) / 8;
    put_varint(out, static_cast<std::uint16_t>(s - prev_src));
    if (packed_size < runs_size) {
      // Hub row: dense enough that a flat bit-packed dst vector wins.
      put_varint(out, (count << 1) | 1u);
      const std::size_t base = out.size();
      out.resize(base + packed_size, 0);
      std::uint64_t bit = 0;
      for (std::size_t k = i; k < j; ++k) {
        write_bits(out.data() + base, bit, edges[k].dst16, dst_bits);
        bit += dst_bits;
      }
    } else {
      put_varint(out, count << 1);
      scan_row_items(edges, i, j, [&](std::uint32_t gap, std::uint64_t len) {
        put_varint(out, gap);
        put_varint(out, static_cast<std::uint32_t>(len - 1));
      });
    }
    prev_src = s;
    i = j;
  }
  pad_payload(out);
  return out;
}

}  // namespace

// ---- public API ------------------------------------------------------------

TileCodecInfo parse_tile_payload(std::span<const std::uint8_t> payload,
                                 std::int64_t expect_edges) {
  if (payload.size() < kTilePayloadHeaderBytes)
    throw FormatError("tile payload too small for its header");
  if (payload.size() % kTilePayloadAlign != 0)
    throw FormatError("tile payload size is not 4-byte aligned");
  TilePayloadHeader h;
  std::memcpy(&h, payload.data(), sizeof(h));

  TileCodecInfo info;
  info.codec = static_cast<TileCodec>(
      checked_in(h.codec, 0, kTileCodecCount - 1, "tile codec byte"));
  checked_in(h.reserved, 0, 0, "tile payload reserved byte");
  if (expect_edges >= 0) {
    const auto e = static_cast<std::uint64_t>(expect_edges);
    info.edge_count = checked_in(h.edge_count, e, e, "tile payload edge count");
  } else {
    info.edge_count = checked_in(h.edge_count, 0, kMaxTilePayloadEdges,
                                 "tile payload edge count");
  }
  switch (info.codec) {
    case TileCodec::kPacked:
      info.src_bits = static_cast<unsigned>(
          checked_in(h.src_bits, 1, 16, "tile payload src bit width"));
      info.dst_bits = static_cast<unsigned>(
          checked_in(h.dst_bits, 1, 16, "tile payload dst bit width"));
      break;
    case TileCodec::kHybrid:
      checked_in(h.src_bits, 0, 0, "tile payload src bit width");
      info.dst_bits = static_cast<unsigned>(
          checked_in(h.dst_bits, 1, 16, "tile payload dst bit width"));
      break;
    default:
      checked_in(h.src_bits, 0, 0, "tile payload src bit width");
      checked_in(h.dst_bits, 0, 0, "tile payload dst bit width");
      break;
  }
  info.body = payload.subspan(kTilePayloadHeaderBytes);

  // Structural body-size floors (all operands sanitized above, so the plain
  // arithmetic cannot overflow: edge_count ≤ 2^32, bit widths ≤ 16).
  const std::uint64_t body_bytes = info.body.size();
  if (info.codec == TileCodec::kRaw) {
    if (body_bytes != info.edge_count * sizeof(SnbEdge))
      throw FormatError("raw tile body size does not match its edge count");
  } else if (info.edge_count == 0) {
    throw FormatError("non-raw tile payload declares zero edges");
  } else if (info.codec == TileCodec::kPacked) {
    const std::uint64_t need = (info.edge_count * info.src_bits + 7) / 8 +
                               (info.edge_count * info.dst_bits + 7) / 8;
    if (body_bytes < need || body_bytes - need >= kTilePayloadAlign)
      throw FormatError("bit-packed tile body size does not match its planes");
  } else if (info.codec == TileCodec::kDelta) {
    if (body_bytes < info.edge_count * 2)
      throw FormatError("delta tile body too small for its edge count");
  }
  return info;
}

std::vector<std::uint8_t> encode_tile_as(TileCodec codec,
                                         std::span<const SnbEdge> edges) {
  GS_CHECK_MSG(edges.size() <= 0x7fffffffu,
               "tile too large for a v3 payload header");
  // An empty tile has exactly one valid payload (the bare kRaw header) —
  // non-raw headers declaring zero edges are rejected at parse time.
  if (edges.empty()) return encode_raw(edges);
  switch (codec) {
    case TileCodec::kRaw:
      return encode_raw(edges);
    case TileCodec::kDelta:
      return encode_delta(edges);
    case TileCodec::kPacked:
      return encode_packed(edges);
    case TileCodec::kRuns:
      return encode_runs(edges);
    case TileCodec::kHybrid:
      return encode_hybrid(edges);
  }
  throw FormatError("unknown tile codec");
}

std::vector<std::uint8_t> compress_tile(std::span<const SnbEdge> edges) {
  std::vector<std::uint8_t> best = encode_raw(edges);
  if (edges.empty()) return best;
  for (const TileCodec c : {TileCodec::kDelta, TileCodec::kPacked,
                            TileCodec::kRuns, TileCodec::kHybrid}) {
    std::vector<std::uint8_t> candidate = encode_tile_as(c, edges);
    if (candidate.size() < best.size()) best = std::move(candidate);
  }
  return best;
}

std::size_t compressed_size(std::span<const SnbEdge> edges) {
  return compress_tile(edges).size();
}

std::vector<SnbEdge> decompress_tile(std::span<const std::uint8_t> payload) {
  const TileCodecInfo info = parse_tile_payload(payload);
  const std::span<const std::uint8_t> body = info.body;
  const std::uint64_t n = info.edge_count;
  std::vector<SnbEdge> out;
  out.reserve(static_cast<std::size_t>(n));

  // Bit-by-bit plane reader: deliberately naive so the oracle shares nothing
  // with TileDecoder's windowed fast paths.
  auto get_bits = [&](std::uint64_t bitpos, unsigned bits) -> std::uint32_t {
    if (bitpos + bits > static_cast<std::uint64_t>(body.size()) * 8)
      throw FormatError("truncated bit-packed tile body");
    std::uint32_t v = 0;
    for (unsigned b = 0; b < bits; ++b) {
      const std::uint64_t bp = bitpos + b;
      v |= static_cast<std::uint32_t>((body[bp >> 3] >> (bp & 7)) & 1u) << b;
    }
    return v;
  };

  std::size_t pos = 0;
  switch (info.codec) {
    case TileCodec::kRaw: {
      out.resize(static_cast<std::size_t>(n));
      if (n > 0)
        std::memcpy(out.data(), body.data(), body.size());
      return out;
    }
    case TileCodec::kDelta: {
      std::uint16_t prev_src = 0;
      std::uint16_t prev_dst = 0;
      for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint32_t dsrc = get_varint(body, pos);
        const std::uint32_t dval = get_varint(body, pos);
        SnbEdge e;
        e.src16 = static_cast<std::uint16_t>(prev_src + dsrc);
        e.dst16 = dsrc == 0 ? static_cast<std::uint16_t>(prev_dst + dval)
                            : static_cast<std::uint16_t>(dval);
        out.push_back(e);
        prev_src = e.src16;
        prev_dst = e.dst16;
      }
      break;
    }
    case TileCodec::kPacked: {
      const std::uint64_t src_plane_bits = n * info.src_bits;
      for (std::uint64_t k = 0; k < n; ++k) {
        SnbEdge e;
        e.src16 = static_cast<std::uint16_t>(
            get_bits(k * info.src_bits, info.src_bits));
        e.dst16 = static_cast<std::uint16_t>(
            get_bits((src_plane_bits + 7) / 8 * 8 + k * info.dst_bits,
                     info.dst_bits));
        out.push_back(e);
      }
      pos = (src_plane_bits + 7) / 8 +
            static_cast<std::size_t>((n * info.dst_bits + 7) / 8);
      break;
    }
    case TileCodec::kRuns: {
      std::uint16_t src = 0;
      while (out.size() < n) {
        src = static_cast<std::uint16_t>(src + get_varint(body, pos));
        const std::uint32_t items = get_varint(body, pos);
        if (items == 0) throw FormatError("empty row in runs tile body");
        std::uint32_t prev_end = 0;
        for (std::uint32_t it = 0; it < items; ++it) {
          const std::uint32_t gap = get_varint(body, pos);
          const std::uint64_t len =
              static_cast<std::uint64_t>(get_varint(body, pos)) + 1;
          if (len > n - out.size())
            throw FormatError("runs tile body encodes more edges than declared");
          const std::uint32_t d0 = (prev_end + gap) & 0xFFFFu;
          for (std::uint64_t t = 0; t < len; ++t) {
            SnbEdge e;
            e.src16 = src;
            e.dst16 = static_cast<std::uint16_t>((d0 + t) & 0xFFFFu);
            out.push_back(e);
          }
          prev_end = d0 + static_cast<std::uint32_t>(len);
        }
      }
      break;
    }
    case TileCodec::kHybrid: {
      std::uint16_t src = 0;
      while (out.size() < n) {
        src = static_cast<std::uint16_t>(src + get_varint(body, pos));
        const std::uint32_t h = get_varint(body, pos);
        const std::uint32_t count = h >> 1;
        if (count == 0) throw FormatError("empty row in hybrid tile body");
        if (count > n - out.size())
          throw FormatError("hybrid tile body encodes more edges than declared");
        if (h & 1u) {
          const std::uint64_t bit0 = static_cast<std::uint64_t>(pos) * 8;
          for (std::uint32_t k = 0; k < count; ++k) {
            SnbEdge e;
            e.src16 = src;
            e.dst16 = static_cast<std::uint16_t>(
                get_bits(bit0 + static_cast<std::uint64_t>(k) * info.dst_bits,
                         info.dst_bits));
            out.push_back(e);
          }
          pos += static_cast<std::size_t>(
              (static_cast<std::uint64_t>(count) * info.dst_bits + 7) / 8);
        } else {
          std::uint32_t prev_end = 0;
          std::uint32_t left = count;
          while (left > 0) {
            const std::uint32_t gap = get_varint(body, pos);
            const std::uint64_t len =
                static_cast<std::uint64_t>(get_varint(body, pos)) + 1;
            if (len > left)
              throw FormatError("hybrid row run overflows its declared count");
            const std::uint32_t d0 = (prev_end + gap) & 0xFFFFu;
            for (std::uint64_t t = 0; t < len; ++t) {
              SnbEdge e;
              e.src16 = src;
              e.dst16 = static_cast<std::uint16_t>((d0 + t) & 0xFFFFu);
              out.push_back(e);
            }
            prev_end = d0 + static_cast<std::uint32_t>(len);
            left -= static_cast<std::uint32_t>(len);
          }
        }
      }
      break;
    }
  }
  check_zero_tail(body, pos);
  return out;
}

// ---- TileDecoder -----------------------------------------------------------

TileDecoder::TileDecoder(const TileCodecInfo& info) : info_(info) {
  if (info_.codec == TileCodec::kPacked) {
    const std::size_t src_plane = static_cast<std::size_t>(
        (info_.edge_count * info_.src_bits + 7) / 8);
    const std::size_t dst_plane = static_cast<std::size_t>(
        (info_.edge_count * info_.dst_bits + 7) / 8);
    dst_plane_off_ = src_plane;
    pos_ = src_plane + dst_plane;  // body cursor used only by check_tail()
  }
}

std::size_t TileDecoder::decode(graph::vid_t* src, graph::vid_t* dst,
                                std::size_t cap, graph::vid_t src_base,
                                graph::vid_t dst_base) {
  const std::uint64_t rem = remaining();
  const std::size_t take =
      cap < rem ? cap : static_cast<std::size_t>(rem);
  if (take == 0) return 0;
  std::size_t got = 0;
  switch (info_.codec) {
    case TileCodec::kRaw:
      got = decode_raw(src, dst, take, src_base, dst_base);
      break;
    case TileCodec::kDelta:
      got = decode_delta(src, dst, take, src_base, dst_base);
      break;
    case TileCodec::kPacked:
      got = decode_packed(src, dst, take, src_base, dst_base);
      break;
    default:
      got = decode_rowwise(src, dst, take, src_base, dst_base);
      break;
  }
  done_ += got;
  if (done_ == info_.edge_count) check_tail();
  return got;
}

std::size_t TileDecoder::decode_raw(graph::vid_t* src, graph::vid_t* dst,
                                    std::size_t take, graph::vid_t sb,
                                    graph::vid_t db) {
  const std::uint8_t* p =
      info_.body.data() + static_cast<std::size_t>(done_) * sizeof(SnbEdge);
  for (std::size_t k = 0; k < take; ++k) {
    std::uint16_t s, d;
    std::memcpy(&s, p + k * 4, 2);
    std::memcpy(&d, p + k * 4 + 2, 2);
    src[k] = sb + s;
    dst[k] = db + d;
  }
  pos_ += take * sizeof(SnbEdge);
  return take;
}

std::size_t TileDecoder::decode_delta(graph::vid_t* src, graph::vid_t* dst,
                                      std::size_t take, graph::vid_t sb,
                                      graph::vid_t db) {
  for (std::size_t k = 0; k < take; ++k) {
    const std::uint32_t dsrc = get_varint(info_.body, pos_);
    const std::uint32_t dval = get_varint(info_.body, pos_);
    prev_src_ = (prev_src_ + dsrc) & 0xFFFFu;
    prev_dst_ = (dsrc == 0 ? prev_dst_ + dval : dval) & 0xFFFFu;
    src[k] = sb + prev_src_;
    dst[k] = db + prev_dst_;
  }
  return take;
}

std::size_t TileDecoder::decode_packed(graph::vid_t* src, graph::vid_t* dst,
                                       std::size_t take, graph::vid_t sb,
                                       graph::vid_t db) {
  const std::uint8_t* base = info_.body.data();
  const std::size_t body_bytes = info_.body.size();
  unpack_plane(base, body_bytes, done_, take, info_.src_bits, sb, src);
  unpack_plane(base + dst_plane_off_, body_bytes - dst_plane_off_, done_, take,
               info_.dst_bits, db, dst);
  return take;
}

std::size_t TileDecoder::decode_rowwise(graph::vid_t* src, graph::vid_t* dst,
                                        std::size_t take, graph::vid_t sb,
                                        graph::vid_t db) {
  const std::span<const std::uint8_t> body = info_.body;
  const bool hybrid = info_.codec == TileCodec::kHybrid;
  const std::uint32_t dst_mask =
      hybrid ? (1u << info_.dst_bits) - 1u : 0;
  std::size_t k = 0;
  while (k < take) {
    if (run_left_ > 0) {
      src[k] = sb + prev_src_;
      dst[k] = db + (run_dst_ & 0xFFFFu);
      ++run_dst_;
      --run_left_;
      if (hybrid) --row_left_;
      ++k;
      continue;
    }
    if (row_left_ > 0) {
      if (row_packed_) {
        if (row_bitpos_ + info_.dst_bits >
            static_cast<std::uint64_t>(body.size()) * 8)
          throw FormatError("truncated bit-packed hybrid row");
        const std::uint32_t d =
            read_bits_tail(body.data(), body.size(), row_bitpos_, dst_mask);
        row_bitpos_ += info_.dst_bits;
        --row_left_;
        if (row_left_ == 0) {
          pos_ = static_cast<std::size_t>((row_bitpos_ + 7) / 8);
          row_packed_ = false;
        }
        src[k] = sb + prev_src_;
        dst[k] = db + d;
        ++k;
        continue;
      }
      // Next (gap, run) item of the current row.
      const std::uint32_t gap = get_varint(body, pos_);
      const std::uint64_t len =
          static_cast<std::uint64_t>(get_varint(body, pos_)) + 1;
      if (hybrid) {
        if (len > row_left_)
          throw FormatError("hybrid row run overflows its declared count");
      } else {
        if (len > info_.edge_count - (done_ + k))
          throw FormatError("runs tile body encodes more edges than declared");
        --row_left_;  // consumed one of the row's declared items
      }
      run_dst_ = (prev_dst_ + gap) & 0xFFFFu;
      run_left_ = len;
      prev_dst_ = run_dst_ + static_cast<std::uint32_t>(len);
      continue;
    }
    // New row.
    prev_src_ = (prev_src_ + get_varint(body, pos_)) & 0xFFFFu;
    prev_dst_ = 0;
    if (hybrid) {
      const std::uint32_t h = get_varint(body, pos_);
      const std::uint32_t count = h >> 1;
      if (count == 0) throw FormatError("empty row in hybrid tile body");
      if (count > info_.edge_count - (done_ + k))
        throw FormatError("hybrid tile body encodes more edges than declared");
      row_left_ = count;
      row_packed_ = (h & 1u) != 0;
      if (row_packed_) row_bitpos_ = static_cast<std::uint64_t>(pos_) * 8;
    } else {
      const std::uint32_t items = get_varint(body, pos_);
      if (items == 0) throw FormatError("empty row in runs tile body");
      row_left_ = items;
    }
  }
  return k;
}

void TileDecoder::check_tail() const {
  if (run_left_ != 0 || row_left_ != 0)
    throw FormatError("tile payload encodes more edges than declared");
  check_zero_tail(info_.body, pos_);
}

}  // namespace gstore::tile
