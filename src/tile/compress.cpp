#include "tile/compress.h"

#include <algorithm>

#include "util/status.h"

namespace gstore::tile {

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint32_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= in.size()) throw FormatError("truncated varint in tile payload");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint32_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 28) throw FormatError("varint overflow in tile payload");
  }
}

std::vector<std::uint8_t> delta_encode(const std::vector<SnbEdge>& edges) {
  std::vector<std::uint8_t> out;
  out.reserve(edges.size() * 2 + 16);
  out.push_back(static_cast<std::uint8_t>(TileCodec::kDelta));
  std::uint16_t prev_src = 0;
  std::uint16_t prev_dst = 0;
  for (const SnbEdge& e : edges) {
    const std::uint32_t dsrc = static_cast<std::uint16_t>(e.src16 - prev_src);
    put_varint(out, dsrc);
    if (dsrc == 0) {
      // Same source row: destinations are strictly increasing → small delta.
      put_varint(out, static_cast<std::uint16_t>(e.dst16 - prev_dst));
    } else {
      put_varint(out, e.dst16);
    }
    prev_src = e.src16;
    prev_dst = e.dst16;
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> compress_tile(std::vector<SnbEdge> edges) {
  std::sort(edges.begin(), edges.end());
  std::vector<std::uint8_t> delta = delta_encode(edges);
  const std::size_t raw_size = 1 + edges.size() * sizeof(SnbEdge);
  if (delta.size() < raw_size) return delta;

  std::vector<std::uint8_t> raw;
  raw.reserve(raw_size);
  raw.push_back(static_cast<std::uint8_t>(TileCodec::kRaw));
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(edges.data());
  raw.insert(raw.end(), bytes, bytes + edges.size() * sizeof(SnbEdge));
  return raw;
}

std::vector<SnbEdge> decompress_tile(std::span<const std::uint8_t> payload) {
  if (payload.empty()) throw FormatError("empty tile payload");
  const auto codec = static_cast<TileCodec>(payload[0]);
  std::vector<SnbEdge> out;
  if (codec == TileCodec::kRaw) {
    const std::size_t body = payload.size() - 1;
    if (body % sizeof(SnbEdge) != 0)
      throw FormatError("raw tile payload not a multiple of edge size");
    out.resize(body / sizeof(SnbEdge));
    std::copy(payload.begin() + 1, payload.end(),
              reinterpret_cast<std::uint8_t*>(out.data()));
    return out;
  }
  if (codec != TileCodec::kDelta)
    throw FormatError("unknown tile codec byte");

  std::size_t pos = 1;
  std::uint16_t prev_src = 0;
  std::uint16_t prev_dst = 0;
  while (pos < payload.size()) {
    const std::uint32_t dsrc = get_varint(payload, pos);
    const std::uint32_t dval = get_varint(payload, pos);
    SnbEdge e;
    e.src16 = static_cast<std::uint16_t>(prev_src + dsrc);
    e.dst16 = dsrc == 0 ? static_cast<std::uint16_t>(prev_dst + dval)
                        : static_cast<std::uint16_t>(dval);
    out.push_back(e);
    prev_src = e.src16;
    prev_dst = e.dst16;
  }
  return out;
}

std::size_t compressed_size(std::vector<SnbEdge> edges) {
  return compress_tile(std::move(edges)).size();
}

}  // namespace gstore::tile
