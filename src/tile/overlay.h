// Read-side interface for un-compacted edge deltas layered over a TileStore.
//
// The ingest subsystem buffers freshly written edges in memory, grouped by
// tile and held in the store's own SNB encoding (src/ingest/delta.h). When an
// overlay is attached to a TileStore, the SCR engine splices these tuples
// into every tile scan, so algorithms observe base-tile edges plus delta
// edges without any format translation — and load_degrees() reports degrees
// that include the overlay's contribution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "tile/snb.h"

namespace gstore::tile {

class TileOverlay {
 public:
  virtual ~TileOverlay() = default;

  // Extra SNB tuples for the tile at `layout_idx`, in the same encoding and
  // canonical orientation as the base tile's tuples. Empty span when the
  // overlay holds nothing for this tile. The span (and the overlay contents
  // as a whole) must stay valid and unchanged for the duration of any engine
  // run that reads it — the engine is a reader, the ingestor the single
  // writer, and the two must not overlap.
  virtual std::span<const SnbEdge> tile_edges(std::uint64_t layout_idx) const = 0;

  // Layout indices holding at least one overlay edge, ascending. The engine
  // uses this to process tiles that have delta edges but no base bytes.
  virtual std::vector<std::uint64_t> nonempty_tiles() const = 0;

  // Total overlay tuples across all tiles (same counting as the store's
  // stored-edge count: one per tuple, so a full-matrix undirected store
  // counts both orientations).
  virtual std::uint64_t edge_count() const = 0;

  // Adds the overlay's degree contributions to `deg`, with the .deg file's
  // semantics: out-degrees for directed stores, total degrees otherwise.
  virtual void apply_degree_deltas(std::span<graph::degree_t> deg) const = 0;
};

}  // namespace gstore::tile
