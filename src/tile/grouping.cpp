#include "tile/grouping.h"

#include <algorithm>

#include "util/bitops.h"

namespace gstore::tile {

std::vector<GroupStats> group_stats(const TileStore& store) {
  const Grid& grid = store.grid();
  std::vector<GroupStats> out;
  out.reserve(grid.group_count());
  for (std::uint64_t g = 0; g < grid.group_count(); ++g) {
    const auto [first, last] = grid.group_range(g);
    GroupStats s;
    s.group = g;
    s.tiles = last - first;
    s.edges = store.start_edge()[last] - store.start_edge()[first];
    // Physical payload bytes — under v3 codecs this is no longer
    // proportional to the edge count.
    s.bytes = store.bytes_of_range(first, last);
    out.push_back(s);
  }
  return out;
}

std::vector<std::uint64_t> tile_edge_counts(const TileStore& store) {
  std::vector<std::uint64_t> out(store.grid().tile_count());
  for (std::uint64_t k = 0; k < out.size(); ++k)
    out[k] = store.tile_edge_count(k);
  return out;
}

std::uint64_t group_metadata_bytes(const Grid& grid, std::uint64_t group,
                                   std::uint64_t bytes_per_vertex) {
  const std::uint32_t g_side = grid.groups_per_side();
  const std::uint32_t gi = static_cast<std::uint32_t>(group / g_side);
  const std::uint32_t gj = static_cast<std::uint32_t>(group % g_side);
  const std::uint64_t width = grid.tile_width();
  auto span_of = [&](std::uint32_t gk) {
    const std::uint64_t lo = std::uint64_t{gk} * grid.group_side() * width;
    const std::uint64_t hi =
        std::min<std::uint64_t>(lo + std::uint64_t{grid.group_side()} * width,
                                grid.vertex_count());
    return hi > lo ? hi - lo : 0;
  };
  // Row and column ranges overlap exactly when gi == gj.
  std::uint64_t vertices = span_of(gi);
  if (gi != gj) vertices += span_of(gj);
  return vertices * bytes_per_vertex;
}

std::uint32_t pick_group_side(unsigned tile_bits, std::uint64_t llc_bytes,
                              std::uint64_t bytes_per_vertex) {
  const std::uint64_t width = std::uint64_t{1} << tile_bits;
  // Worst case (off-diagonal group): metadata for both the row range and the
  // column range must be resident: 2 * q * width * bytes_per_vertex ≤ llc.
  const std::uint64_t per_q = 2 * width * bytes_per_vertex;
  if (per_q == 0 || llc_bytes < per_q) return 1;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(llc_bytes / per_q, 1u << 20));
}

}  // namespace gstore::tile
