#include "tile/tile_file.h"

#include <algorithm>
#include <cctype>
#include <limits>

#include "io/file.h"
#include "tile/overlay.h"
#include "util/checked.h"
#include "util/status.h"

namespace gstore::tile {

namespace {
struct TilesFileHeader {
  std::uint64_t magic = kTileFileMagic;
  std::uint32_t version = kTileStoreVersionCurrent;
  std::uint32_t pad = 0;
  std::uint64_t edge_count = 0;
  std::uint64_t reserved[5] = {0, 0, 0, 0, 0};
};
static_assert(sizeof(TilesFileHeader) == 64);

void check_version(std::uint32_t version, const std::string& path) {
  if (version < kTileStoreVersionMin || version > kTileStoreVersionCurrent)
    throw FormatError(
        path + " has format version " + std::to_string(version) +
        "; this reader understands versions " +
        std::to_string(kTileStoreVersionMin) + ".." +
        std::to_string(kTileStoreVersionCurrent) +
        (version > kTileStoreVersionCurrent
             ? " (written by a newer gstore?)"
             : ""));
}
}  // namespace

std::string TileStore::generation_base(const std::string& base,
                                       std::uint32_t gen) {
  return gen == 0 ? base : base + ".g" + std::to_string(gen);
}

std::string TileStore::resolve(const std::string& base) {
  const std::string cur = current_path(base);
  if (!io::File::exists(cur)) return base;
  io::File f(cur, io::OpenMode::kRead);
  const std::uint64_t n = f.size();
  if (n == 0 || n > 16)
    throw FormatError("generation manifest " + cur + " has implausible size " +
                      std::to_string(n));
  std::string text(n, '\0');
  f.pread_full(text.data(), n, 0);
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
    text.pop_back();
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos)
    throw FormatError("generation manifest " + cur +
                      " is garbled (expected a decimal generation)");
  // stoul parses into unsigned long (64-bit here); a manifest naming a value
  // past uint32 would otherwise truncate silently and open the wrong files.
  const unsigned long gen = std::stoul(text);
  if (gen > std::numeric_limits<std::uint32_t>::max())
    throw FormatError("generation manifest " + cur +
                      " names out-of-range generation " + text);
  return generation_base(base, static_cast<std::uint32_t>(gen));
}

TileStore TileStore::open(const std::string& base_path, io::DeviceConfig config) {
  TileStore store;
  store.base_path_ = resolve(base_path);

  // Start-edge file: metadata + index. Every size below is cross-checked
  // against the actual file size *before* it drives an allocation, so a
  // garbled header cannot make this reader allocate unbounded memory, wrap
  // `tile_count + 1` around zero, or index an empty vector.
  {
    io::File sei(sei_path(store.base_path_), io::OpenMode::kRead);
    const std::uint64_t sei_size = sei.size();
    if (sei_size < sizeof(store.meta_))
      throw FormatError(sei.path() + " is too small to hold a start-edge header");
    sei.pread_full(&store.meta_, sizeof(store.meta_), 0);
    if (store.meta_.magic != kSeiFileMagic)
      throw FormatError(sei.path() +
                        " is not a g-store start-edge file (magic mismatch)");
    check_version(store.meta_.version, sei.path());
    const std::uint64_t index_bytes = sei_size - sizeof(store.meta_);
    if (index_bytes % sizeof(std::uint64_t) != 0)
      throw FormatError(sei.path() +
                        " start-edge index is not a whole number of entries");
    const std::uint64_t entries = index_bytes / sizeof(std::uint64_t);
    // v3 appends a second index of payload byte offsets after the edge
    // index; earlier versions hold only the edge index.
    store.packed_payloads_ = store.meta_.version >= 3;
    const std::uint64_t index_count =
        checked_add(store.meta_.tile_count, 1, "start-edge index size");
    const std::uint64_t expect_entries = checked_mul(
        index_count, store.packed_payloads_ ? 2 : 1, "sei index entries");
    // The index holds tile_count + 1 offsets per sub-index; tying the claimed
    // tile count to the real file size bounds the resizes below by bytes that
    // exist on disk.
    if (entries != expect_entries)
      throw FormatError(sei.path() + " claims " +
                        std::to_string(store.meta_.tile_count) +
                        " tiles but holds " + std::to_string(entries) +
                        " index entries");
    store.start_edge_.resize(index_count);
    sei.pread_full(store.start_edge_.data(),
                   store.start_edge_.size() * sizeof(std::uint64_t),
                   sizeof(store.meta_));
    if (store.start_edge_.front() != 0 ||
        store.start_edge_.back() != store.meta_.edge_count)
      throw FormatError("inconsistent start-edge index in " + sei.path());
    for (std::size_t k = 0; k + 1 < store.start_edge_.size(); ++k)
      if (store.start_edge_[k] > store.start_edge_[k + 1])
        throw FormatError("non-monotone start-edge index in " + sei.path());
    if (store.packed_payloads_) {
      if (store.meta_.fat_tuples())
        throw FormatError(sei.path() +
                          " is v3 but carries the fat-tuple ablation flag "
                          "(v3 payloads are SNB codecs only)");
      store.start_byte_.resize(index_count);
      sei.pread_full(store.start_byte_.data(),
                     store.start_byte_.size() * sizeof(std::uint64_t),
                     sizeof(store.meta_) +
                         store.start_edge_.size() * sizeof(std::uint64_t));
      if (store.start_byte_.front() != 0)
        throw FormatError("inconsistent start-byte index in " + sei.path());
      for (std::size_t k = 0; k + 1 < store.start_byte_.size(); ++k) {
        if (store.start_byte_[k] > store.start_byte_[k + 1])
          throw FormatError("non-monotone start-byte index in " + sei.path());
        const std::uint64_t bytes =
            store.start_byte_[k + 1] - store.start_byte_[k];
        const std::uint64_t edges =
            store.start_edge_[k + 1] - store.start_edge_[k];
        // A payload is the 8-byte codec header plus at most the raw tuple
        // body (the writer picks the smallest codec, raw included), padded
        // to 4 bytes; empty tiles store nothing.
        const std::uint64_t cap =
            edges == 0 ? 0
                       : checked_add(kTilePayloadHeaderBytes,
                                     checked_mul(edges, sizeof(SnbEdge),
                                                 "tile payload cap"),
                                     "tile payload cap");
        if (bytes > cap || bytes % kTilePayloadAlign != 0 ||
            (edges > 0 && bytes < kTilePayloadHeaderBytes + kTilePayloadAlign))
          throw FormatError(sei.path() + ": tile " + std::to_string(k) +
                            " payload spans " + std::to_string(bytes) +
                            " bytes, implausible for " +
                            std::to_string(edges) + " edges");
      }
    }
  }

  if ((store.meta_.flags & ~0xFu) != 0)
    throw FormatError(sei_path(store.base_path_) +
                      " carries unknown flag bits (written by a newer gstore?)");
  if (store.meta_.vertex_count == 0 ||
      store.meta_.vertex_count > std::numeric_limits<graph::vid_t>::max())
    throw FormatError(sei_path(store.base_path_) + " names vertex count " +
                      std::to_string(store.meta_.vertex_count) +
                      ", outside this build's 32-bit vertex-id range");
  if (store.meta_.tile_bits < 1 || store.meta_.tile_bits > 16)
    throw FormatError(sei_path(store.base_path_) + " names tile_bits " +
                      std::to_string(store.meta_.tile_bits) +
                      " outside the supported range [1, 16]");
  if (store.meta_.group_side == 0)
    throw FormatError(sei_path(store.base_path_) + " names a zero group_side");

  // Check the geometry arithmetically before constructing the Grid: its
  // layout tables are O(p^2), so a vertex count inconsistent with the
  // (file-size-bounded) tile count must be rejected while it is still cheap.
  {
    const std::uint64_t width =
        checked_shl(1, store.meta_.tile_bits, "tile width");
    const std::uint64_t p =
        checked_add(store.meta_.vertex_count, width - 1, "rounded vertex count") /
        width;
    const std::uint64_t expected_tiles =
        store.meta_.symmetric()
            ? checked_mul(p, checked_add(p, 1, "tile grid side"),
                          "tile count") / 2
            : checked_mul(p, p, "tile count");
    if (expected_tiles != store.meta_.tile_count)
      throw FormatError(sei_path(store.base_path_) + ": vertex count " +
                        std::to_string(store.meta_.vertex_count) +
                        " implies " + std::to_string(expected_tiles) +
                        " tiles, index holds " +
                        std::to_string(store.meta_.tile_count));
  }

  store.grid_ = Grid(static_cast<graph::vid_t>(store.meta_.vertex_count),
                     store.meta_.symmetric(), store.meta_.tile_bits,
                     store.meta_.group_side);
  if (store.grid_.tile_count() != store.meta_.tile_count)
    throw FormatError("tile count mismatch between grid and index");

  for (std::uint64_t k = 0; k < store.meta_.tile_count; ++k)
    store.max_tile_bytes_ = std::max(store.max_tile_bytes_, store.tile_bytes(k));

  // Data file via the device model.
  store.device_ =
      std::make_unique<io::Device>(tiles_path(store.base_path_), config);
  if (store.device_->size() < sizeof(TilesFileHeader))
    throw FormatError(tiles_path(store.base_path_) +
                      " is too small to hold a tile-file header");
  TilesFileHeader th;
  // Through Device::read, not file().pread_full: the device's synchronous
  // path retries interrupted/transient errors, so opening a store survives
  // the same faults the engine's streaming reads do.
  store.device_->read(&th, sizeof(th), 0);
  if (th.magic != kTileFileMagic)
    throw FormatError(tiles_path(store.base_path_) +
                      " is not a g-store tile file (magic mismatch)");
  check_version(th.version, tiles_path(store.base_path_));
  if (th.edge_count != store.meta_.edge_count)
    throw FormatError("edge count mismatch between .tiles and .sei");
  store.data_offset_ = sizeof(TilesFileHeader);

  // Guard the expected-size arithmetic itself: an edge count near 2^64 would
  // wrap `edge_count * tuple_bytes` and could collide with the real size.
  if (store.meta_.edge_count >
      (std::numeric_limits<std::uint64_t>::max() - store.data_offset_) /
          store.meta_.tuple_bytes())
    throw FormatError(sei_path(store.base_path_) + " names edge count " +
                      std::to_string(store.meta_.edge_count) +
                      ", larger than any representable file");
  const std::uint64_t expect =
      store.packed_payloads_
          ? checked_add(store.data_offset_, store.start_byte_.back(),
                        "expected tile file size")
          : checked_add(store.data_offset_,
                        checked_mul(store.meta_.edge_count,
                                    store.meta_.tuple_bytes(),
                                    "tile data bytes"),
                        "expected tile file size");
  if (store.device_->size() != expect)
    throw FormatError(tiles_path(store.base_path_) + " truncated");
  return store;
}

TileStore TileStore::open_tiered(const std::string& base_path,
                                 io::DeviceConfig config, double hot_fraction,
                                 TierPolicy policy) {
  GS_CHECK_MSG(config.slow_tier_bw > 0,
               "tiered store needs a slow-tier bandwidth");
  GS_CHECK_MSG(hot_fraction >= 0.0 && hot_fraction <= 1.0,
               "hot_fraction must be in [0,1]");
  TileStore store = open(base_path, config);

  const std::uint64_t hot_budget =
      static_cast<std::uint64_t>(store.data_bytes() * hot_fraction);
  const std::uint64_t n = store.grid().tile_count();
  std::vector<std::uint8_t> hot(n, 0);

  if (policy == TierPolicy::kHotPrefix) {
    std::uint64_t used = 0;
    for (std::uint64_t k = 0; k < n && used < hot_budget; ++k) {
      hot[k] = 1;
      used += store.tile_bytes(k);
    }
  } else {  // kLargestTiles
    std::vector<std::uint64_t> order(n);
    for (std::uint64_t k = 0; k < n; ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
      return store.tile_bytes(a) > store.tile_bytes(b);
    });
    std::uint64_t used = 0;
    for (std::uint64_t k : order) {
      if (used >= hot_budget) break;
      hot[k] = 1;
      used += store.tile_bytes(k);
    }
  }

  io::TierMap map;
  for (std::uint64_t k = 0; k < n; ++k) {
    if (store.tile_bytes(k) == 0) continue;
    map.add_range(store.tile_offset(k), store.tile_offset(k) + store.tile_bytes(k),
                  hot[k] ? 0u : 1u);
  }
  store.device_->set_tier_map(std::move(map));
  return store;
}

void TileStore::read_range(std::uint64_t first, std::uint64_t last,
                           std::uint8_t* buf) {
  GS_CHECK(first <= last && last <= meta_.tile_count);
  const std::uint64_t bytes = bytes_of_range(first, last);
  if (bytes == 0) return;
  device_->read(buf, bytes, tile_offset(first));
}

TileView TileStore::view(std::uint64_t layout_idx, const std::uint8_t* data) const {
  GSTORE_DCHECK_LT(layout_idx, meta_.tile_count);
  GSTORE_DCHECK(data != nullptr || tile_edge_count(layout_idx) == 0);
  const TileCoord c = grid_.coord_at(layout_idx);
  TileView v;
  v.coord = c;
  v.src_base = grid_.tile_base(c.i);
  v.dst_base = grid_.tile_base(c.j);
  v.fat = meta_.fat_tuples();
  const std::uint64_t n = tile_edge_count(layout_idx);
  if (v.fat) {
    v.fat_edges = std::span<const graph::Edge>(
        reinterpret_cast<const graph::Edge*>(data), n);
  } else if (!packed_payloads_) {
    v.edges = std::span<const SnbEdge>(reinterpret_cast<const SnbEdge*>(data),
                                       n);
  } else if (n > 0) {
    // v3: parse + sanitize the payload's codec header once per tile; raw
    // bodies alias the buffer directly (the v1/v2 zero-copy path), encoded
    // bodies hand the sanitized info to TileDecoder/for_each_block.
    const std::span<const std::uint8_t> payload(data, tile_bytes(layout_idx));
    const TileCodecInfo info =
        parse_tile_payload(payload, static_cast<std::int64_t>(n));
    if (info.codec == TileCodec::kRaw) {
      v.edges = std::span<const SnbEdge>(
          reinterpret_cast<const SnbEdge*>(info.body.data()), n);
    } else {
      v.codec = info.codec;
      v.src_bits = static_cast<std::uint8_t>(info.src_bits);
      v.dst_bits = static_cast<std::uint8_t>(info.dst_bits);
      v.coded_edges = n;
      v.payload = info.body;
    }
  }
  return v;
}

graph::CompressedDegrees TileStore::load_degrees() const {
  io::File f(deg_path(base_path_), io::OpenMode::kRead);
  const std::uint64_t n = meta_.vertex_count;
  const std::uint64_t deg_bytes =
      checked_mul(n, sizeof(graph::degree_t), "degree file size");
  if (f.size() != deg_bytes)
    throw FormatError("degree file size mismatch for " + base_path_);
  std::vector<graph::degree_t> deg(n);
  if (n > 0) f.pread_full(deg.data(), deg_bytes, 0);
  if (overlay_ != nullptr) overlay_->apply_degree_deltas(deg);
  return graph::CompressedDegrees::build(deg);
}

std::uint64_t TileStore::storage_bytes() const {
  return io::File::file_size(tiles_path(base_path_)) +
         io::File::file_size(sei_path(base_path_));
}

}  // namespace gstore::tile
