// Deep structural verification of an on-disk tile store.
//
// Beyond the header checks TileStore::open already performs, this walks the
// whole store and validates every invariant a correct converter must
// produce. Used by `gstore_convert --verify` and by failure-injection tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gstore::tile {

struct VerifyReport {
  bool ok = true;
  std::vector<std::string> problems;
  std::uint64_t tiles_checked = 0;
  std::uint64_t edges_checked = 0;
  // v3 stores: payloads whose codec header + body passed the independent
  // (decompress_tile) decode cross-check.
  std::uint64_t payloads_checked = 0;
  std::uint64_t wal_frames_checked = 0;
  std::uint64_t wal_edges_checked = 0;

  void fail(std::string what) {
    ok = false;
    problems.push_back(std::move(what));
  }
};

// Verifies <base>.tiles/.sei[/.deg][/.wal] (following the generation
// manifest, if one exists):
//  * headers consistent (open-level checks);
//  * every SNB/fat tuple decodes to vertex ids inside its tile's ranges and
//    inside the graph;
//  * v3 stores: every tile payload's codec byte and width header are valid,
//    the declared edge count matches the .sei index and the body actually
//    decodes to that many edges with per-codec local ids inside the tile
//    width, and the streaming (TileDecoder) and oracle (decompress_tile)
//    decoders agree edge-for-edge;
//  * symmetric stores hold only upper-triangle tuples;
//  * counting symmetry: tuple-derived degree sums add up to the header's
//    edge count (2× for upper-triangle stores, where each tuple stands for
//    both directions);
//  * the degree file (if present) is exactly vertex_count entries long and
//    matches degrees recomputed from tiles, accounting for each stored
//    tuple once per direction it represents;
//  * the WAL (if present) has an intact header, every fully-present frame
//    passes its CRC, and — when the WAL belongs to this generation — its
//    edges land inside the vertex range.
// Stops early after `max_problems` findings.
VerifyReport verify_store(const std::string& base_path,
                          std::size_t max_problems = 16);

}  // namespace gstore::tile
