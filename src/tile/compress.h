// Optional intra-tile compression (the paper's §VIII future-work item).
//
// Edges inside one tile are sorted by (src16, dst16) and delta-encoded with
// LEB128 varints: each edge stores (src_delta, dst) where dst is re-based to
// a delta when the source repeats. Power-law tiles with dense rows compress
// well; near-empty tiles are stored raw (a 1-byte header selects the codec).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tile/snb.h"

namespace gstore::tile {

enum class TileCodec : std::uint8_t { kRaw = 0, kDelta = 1 };

// Compresses a tile payload. The edges are sorted as a side effect of
// encoding (order inside a tile is not semantically meaningful). Picks kRaw
// automatically when delta encoding would not shrink the payload.
std::vector<std::uint8_t> compress_tile(std::vector<SnbEdge> edges);

// Decompresses a payload produced by compress_tile.
std::vector<SnbEdge> decompress_tile(std::span<const std::uint8_t> payload);

// Size in bytes that `edges` would occupy after compression (without
// materializing the output twice).
std::size_t compressed_size(std::vector<SnbEdge> edges);

}  // namespace gstore::tile
