// Per-tile codecs — the production tile payload format since store v3.
//
// Every non-empty tile payload starts with an 8-byte self-describing header
// (codec byte, per-endpoint bit widths, edge count) followed by the encoded
// body, zero-padded so the whole payload is a multiple of 4 bytes (keeps
// every tile's file offset 4-aligned for O_DIRECT-friendly reads and aligned
// SnbEdge aliasing of raw bodies). Codecs, per Log(Graph) and the
// compression survey (PAPERS.md):
//
//   kRaw    — n SnbEdge tuples verbatim (compat/fallback; the v1/v2 format).
//   kDelta  — (src_delta, dst|dst_delta) LEB128 varints, the PR-ablation
//             codec promoted unchanged.
//   kPacked — planar bit-packing: all src locals at src_bits each, then all
//             dst locals at dst_bits each, widths = ⌈log2(max local + 1)⌉.
//             Decodes with flat widening loops (SIMD-friendly).
//   kRuns   — row/interval encoding: per source row, (gap, run_len) items
//             over sorted destinations; consecutive dsts collapse to one item.
//   kHybrid — degree-aware: per row, either gap/run items (sparse rows) or a
//             bit-packed dst vector at dst_bits (hub rows), whichever is
//             smaller for that row.
//
// All decode arithmetic wraps mod 2^16, so every codec round-trips arbitrary
// tuple order bit-exactly — sortedness only affects the ratio; writers sort
// each tile slice before encoding. The header fields are untrusted on-disk
// data: parse_tile_payload() range-checks every field through util/checked.h
// once, and everything downstream (TileDecoder, decompress_tile) consumes
// only the sanitized TileCodecInfo.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "tile/snb.h"

namespace gstore::tile {

enum class TileCodec : std::uint8_t {
  kRaw = 0,
  kDelta = 1,
  kPacked = 2,
  kRuns = 3,
  kHybrid = 4,
};
inline constexpr std::uint8_t kTileCodecCount = 5;

// Fixed payload prologue. Wire struct (GL6-tracked): fields must pass
// through parse_tile_payload()'s range checks before any arithmetic.
struct TilePayloadHeader {
  std::uint8_t codec = 0;
  std::uint8_t src_bits = 0;  // kPacked only; 0 otherwise
  std::uint8_t dst_bits = 0;  // kPacked/kHybrid; 0 otherwise
  std::uint8_t reserved = 0;  // must be 0
  std::uint32_t edge_count = 0;
};
static_assert(sizeof(TilePayloadHeader) == 8);

inline constexpr std::size_t kTilePayloadHeaderBytes = sizeof(TilePayloadHeader);
inline constexpr std::size_t kTilePayloadAlign = 4;
// Allocation bound for standalone decompression (fuzz/verify): a run item
// can expand ~20000×, so the declared count — not the payload size — bounds
// the output. 2^27 edges ≈ 512 MiB decoded, far past any real tile.
inline constexpr std::uint64_t kMaxTilePayloadEdges = 1ull << 27;

// Header fields after validation, plus the encoded body (payload minus the
// 8-byte header; still includes the ≤3 zero pad bytes at the tail).
struct TileCodecInfo {
  TileCodec codec = TileCodec::kRaw;
  unsigned src_bits = 0;
  unsigned dst_bits = 0;
  std::uint64_t edge_count = 0;
  std::span<const std::uint8_t> body;
};

// Validates a payload's header: codec byte, bit widths, reserved byte,
// declared edge count (against per-codec structural minima and, when
// `expect_edges` >= 0, against the count the caller knows from the .sei
// index). Throws FormatError on anything off. This is the single
// sanitization point for the untrusted header fields.
TileCodecInfo parse_tile_payload(std::span<const std::uint8_t> payload,
                                 std::int64_t expect_edges = -1);

// Compresses one tile's edges: encodes with every codec and returns the
// smallest payload (ties break toward the lower codec id, so incompressible
// tiles fall back to kRaw). Preserves edge order; callers that want the best
// ratio sort first. An empty span yields an 8-byte kRaw header.
std::vector<std::uint8_t> compress_tile(std::span<const SnbEdge> edges);

// Encodes with one specific codec (benchmarks, fuzz seeds, tests).
std::vector<std::uint8_t> encode_tile_as(TileCodec codec,
                                         std::span<const SnbEdge> edges);

// Decompresses a payload produced by compress_tile/encode_tile_as. This is
// the independent scalar oracle: it shares no decode state machine with
// TileDecoder, and it insists on a fully-consumed body (only zero padding
// may trail the encoded edges). Throws FormatError on malformed input.
std::vector<SnbEdge> decompress_tile(std::span<const std::uint8_t> payload);

// Size in bytes that `edges` would occupy after compression.
std::size_t compressed_size(std::span<const SnbEdge> edges);

// Streaming decoder for the EdgeBlock hot path: decodes up to `cap` edges
// per call directly into SoA vid_t arrays, fusing the tile-base re-attach
// (global = base + local) into the widening store — no intermediate
// std::vector<SnbEdge>. The codec branch is taken once per call (once per
// 512-edge block), hoisted out of the inner loops, which are flat
// auto-vectorizable widening passes for kRaw/kPacked. Construct from a
// sanitized TileCodecInfo only.
class TileDecoder {
 public:
  explicit TileDecoder(const TileCodecInfo& info);

  // Decodes min(cap, remaining()) edges; returns how many were produced.
  // Writes global vertex ids src_base+local / dst_base+local. Throws
  // FormatError if the body is truncated or structurally invalid. After the
  // final edge, throws if anything but zero padding trails the body.
  std::size_t decode(graph::vid_t* src, graph::vid_t* dst, std::size_t cap,
                     graph::vid_t src_base, graph::vid_t dst_base);

  std::uint64_t produced() const noexcept { return done_; }
  std::uint64_t remaining() const noexcept { return info_.edge_count - done_; }

 private:
  std::size_t decode_raw(graph::vid_t* src, graph::vid_t* dst, std::size_t take,
                         graph::vid_t sb, graph::vid_t db);
  std::size_t decode_delta(graph::vid_t* src, graph::vid_t* dst,
                           std::size_t take, graph::vid_t sb, graph::vid_t db);
  std::size_t decode_packed(graph::vid_t* src, graph::vid_t* dst,
                            std::size_t take, graph::vid_t sb, graph::vid_t db);
  std::size_t decode_rowwise(graph::vid_t* src, graph::vid_t* dst,
                             std::size_t take, graph::vid_t sb,
                             graph::vid_t db);
  void check_tail() const;

  TileCodecInfo info_;
  std::uint64_t done_ = 0;
  std::size_t pos_ = 0;  // byte cursor (kRaw/kDelta/kRuns/kHybrid)
  // kPacked plane geometry (validated in the constructor).
  std::size_t dst_plane_off_ = 0;
  // kDelta/kRuns/kHybrid row state.
  std::uint32_t prev_src_ = 0;
  std::uint32_t prev_dst_ = 0;
  std::uint64_t row_left_ = 0;      // items (kRuns) or dsts (kHybrid) left
  bool row_packed_ = false;         // kHybrid: current row is bit-packed
  std::uint64_t row_bitpos_ = 0;    // kHybrid packed row: absolute bit cursor
  std::uint32_t run_dst_ = 0;       // kRuns/kHybrid: next dst of current run
  std::uint64_t run_left_ = 0;      // edges left in the current run item
};

}  // namespace gstore::tile
