// Physical-group statistics and iteration helpers (paper §V-A, Figures 6/7).
#pragma once

#include <cstdint>
#include <vector>

#include "tile/tile_file.h"

namespace gstore::tile {

struct GroupStats {
  std::uint64_t group = 0;        // row-major group id
  std::uint64_t tiles = 0;        // stored tiles in the group
  std::uint64_t edges = 0;
  std::uint64_t bytes = 0;
};

// Per-group edge counts/sizes for a store (Fig 7 data).
std::vector<GroupStats> group_stats(const TileStore& store);

// Per-tile edge counts in layout order (Fig 5 data).
std::vector<std::uint64_t> tile_edge_counts(const TileStore& store);

// Bytes of algorithmic metadata touched while processing one physical group:
// `bytes_per_vertex` × the number of distinct vertex rows/columns the group
// spans. The paper sizes q so this fits the LLC.
std::uint64_t group_metadata_bytes(const Grid& grid, std::uint64_t group,
                                   std::uint64_t bytes_per_vertex);

// Largest group_side q such that metadata for a q×q tile group fits in
// `llc_bytes` (the paper's guidance for picking q; e.g. 256 for a 16MB LLC
// with 2 ranges × 2^16 vertices × 4B... see Fig 11).
std::uint32_t pick_group_side(unsigned tile_bits, std::uint64_t llc_bytes,
                              std::uint64_t bytes_per_vertex);

}  // namespace gstore::tile
