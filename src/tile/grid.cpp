#include "tile/grid.h"

#include <algorithm>

#include "util/bitops.h"
#include "util/status.h"

namespace gstore::tile {

Grid::Grid(graph::vid_t vertex_count, bool symmetric, unsigned tile_bits,
           std::uint32_t group_side)
    : vertex_count_(vertex_count), symmetric_(symmetric), tile_bits_(tile_bits) {
  GS_CHECK_MSG(tile_bits >= 1 && tile_bits <= 16,
               "tile_bits must be in [1,16] so SNB ids fit uint16_t");
  GS_CHECK_MSG(vertex_count >= 1, "grid needs at least one vertex");
  p_ = static_cast<std::uint32_t>(
      ceil_div(vertex_count, graph::vid_t{1} << tile_bits));
  q_ = std::min<std::uint32_t>(std::max<std::uint32_t>(group_side, 1), p_);
  g_ = static_cast<std::uint32_t>(ceil_div(p_, q_));
  build_layout();
}

std::uint64_t Grid::group_count() const noexcept {
  return static_cast<std::uint64_t>(g_) * g_;
}

void Grid::build_layout() {
  const std::uint64_t pp = static_cast<std::uint64_t>(p_) * p_;
  coord_to_layout_.assign(pp, ~std::uint64_t{0});
  layout_to_coord_.clear();
  group_start_.assign(group_count() + 1, 0);

  std::uint64_t next = 0;
  for (std::uint32_t gi = 0; gi < g_; ++gi) {
    for (std::uint32_t gj = 0; gj < g_; ++gj) {
      group_start_[static_cast<std::uint64_t>(gi) * g_ + gj] = next;
      const std::uint32_t i_end = std::min(p_, (gi + 1) * q_);
      const std::uint32_t j_end = std::min(p_, (gj + 1) * q_);
      for (std::uint32_t i = gi * q_; i < i_end; ++i) {
        for (std::uint32_t j = gj * q_; j < j_end; ++j) {
          if (!tile_exists(i, j)) continue;
          coord_to_layout_[static_cast<std::uint64_t>(i) * p_ + j] = next;
          layout_to_coord_.push_back(TileCoord{i, j});
          ++next;
        }
      }
    }
  }
  group_start_.back() = next;
  tile_count_ = next;
}

std::uint64_t Grid::layout_index(std::uint32_t i, std::uint32_t j) const {
  if (!tile_exists(i, j))
    throw InvalidArgument("tile (" + std::to_string(i) + "," + std::to_string(j) +
                          ") does not exist in this grid");
  return coord_to_layout_[static_cast<std::uint64_t>(i) * p_ + j];
}

TileCoord Grid::coord_at(std::uint64_t layout_index) const {
  GS_CHECK_MSG(layout_index < tile_count_, "layout index out of range");
  return layout_to_coord_[layout_index];
}

std::pair<std::uint64_t, std::uint64_t> Grid::group_range(std::uint64_t group) const {
  GS_CHECK_MSG(group < group_count(), "group id out of range");
  return {group_start_[group], group_start_[group + 1]};
}

}  // namespace gstore::tile
