// Block-decoded edge path (paper §IV-B; FlashGraph/Log(Graph)-style).
//
// The per-edge scan pays its decode (u16→u32 widening) and its compute
// interleaved, one edge at a time. for_each_block() instead expands a run of
// SNB tuples into structure-of-arrays vid_t blocks in one pass — a loop the
// compiler auto-vectorizes — and hands each block to the caller, so the
// compute kernel runs over flat vid_t arrays with its branches hoisted and
// its metadata gathers prefetched (EdgeBlock::prefetch_src/prefetch_dst).
// TileAlgorithm::process_block() is the consumer-side contract; visit_edges()
// in tile_file.h remains the per-edge fallback and the correctness oracle
// (tests assert both paths visit identical edge multisets).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "graph/types.h"
#include "tile/tile_file.h"
#include "util/dcheck.h"

namespace gstore::tile {

// Issues a read prefetch into all cache levels. Locality 3 (prefetcht0)
// measures best for the block pass: the line is gathered within a few
// hundred cycles of the prefetch, so parking it in L2/L3 (locality 1–2)
// just re-pays the L1 fill on the demand load
// (BM_VisitEdges_vs_ProcessBlock tracks this).
inline void prefetch_ro(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// One decoded run of a tile's edges in SoA form. 512 edges keeps the block
// (4KB of vids) inside L1 while giving the prefetch pass enough depth to
// cover DRAM latency — the paper's 4-byte tuples make 512 tuples one 2KB
// read, so a block never spans more than a few cache lines of source data.
struct EdgeBlock {
  static constexpr std::size_t kMaxEdges = 512;

  graph::vid_t src[kMaxEdges];  // global ids: tuple first field, widened
  graph::vid_t dst[kMaxEdges];  // global ids: tuple second field, widened
  std::uint32_t size = 0;
  const TileView* view = nullptr;  // tile this block was decoded from
  std::size_t first = 0;           // index of src[0]/dst[0] within the view

  // Prefetches element `base[src[k]]` / `base[dst[k]]` for every edge of the
  // block — the per-vertex metadata the compute loop is about to gather.
  template <typename T>
  void prefetch_src(const T* base) const noexcept {
    for (std::uint32_t k = 0; k < size; ++k) prefetch_ro(base + src[k]);
  }
  template <typename T>
  void prefetch_dst(const T* base) const noexcept {
    for (std::uint32_t k = 0; k < size; ++k) prefetch_ro(base + dst[k]);
  }
};

// Decodes every edge of `v` into EdgeBlocks and invokes fn(const EdgeBlock&)
// for each, in storage order. Handles every tile representation — fat
// tuples, raw SNB, and the v3 codecs — so callers stay format-agnostic
// exactly as with visit_edges(). The representation branch is taken once per
// tile, hoisted out of the block loop; encoded tiles stream through
// TileDecoder straight into the SoA arrays (global ids fused in) with no
// intermediate SnbEdge materialization.
template <typename Fn>
inline void for_each_block(const TileView& v, Fn&& fn) {
  EdgeBlock b;
  b.view = &v;
  const std::size_t n = v.edge_count();
  if (!v.fat && v.codec != TileCodec::kRaw) {
    TileDecoder dec(v.codec_info());
    std::size_t pos = 0;
    std::size_t got;
    while ((got = dec.decode(b.src, b.dst, EdgeBlock::kMaxEdges, v.src_base,
                             v.dst_base)) > 0) {
      b.first = pos;
      b.size = static_cast<std::uint32_t>(got);
      fn(static_cast<const EdgeBlock&>(b));
      pos += got;
    }
    return;
  }
  for (std::size_t pos = 0; pos < n; pos += EdgeBlock::kMaxEdges) {
    const std::size_t len = std::min(EdgeBlock::kMaxEdges, n - pos);
    if (v.fat) {
      const graph::Edge* e = v.fat_edges.data() + pos;
      for (std::size_t k = 0; k < len; ++k) {
        b.src[k] = e[k].src;
        b.dst[k] = e[k].dst;
      }
    } else {
      const SnbEdge* e = v.edges.data() + pos;
      const graph::vid_t sb = v.src_base;
      const graph::vid_t db = v.dst_base;
      // u16→u32 widening over a contiguous tuple run: auto-vectorizes.
      for (std::size_t k = 0; k < len; ++k) {
        b.src[k] = sb + e[k].src16;
        b.dst[k] = db + e[k].dst16;
      }
    }
    b.first = pos;
    b.size = static_cast<std::uint32_t>(len);
    fn(static_cast<const EdgeBlock&>(b));
  }
}

}  // namespace gstore::tile
