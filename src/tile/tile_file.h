// On-disk tile store (paper §IV "Implementation" + §V-A).
//
// Two files, exactly like the paper:
//   <base>.tiles — all tiles' payloads concatenated in physical-group layout
//                  order (one file; per-tile files would be millions). v1/v2
//                  payloads are raw SNB tuples; v3 payloads are per-tile
//                  codec-encoded (tile/compress.h, docs/FORMAT.md).
//   <base>.sei   — the "start-edge" file: grid metadata plus one uint64 per
//                  tile giving the starting edge number (CSR-of-tiles). v3
//                  appends a second uint64 index of per-tile payload byte
//                  offsets, since byte size no longer follows from edge count.
// Plus one auxiliary file the algorithms need:
//   <base>.deg   — uint32 degrees (out-degree for directed, total degree for
//                  undirected), loadable into CompressedDegrees.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/degree.h"
#include "graph/types.h"
#include "io/device.h"
#include "tile/compress.h"
#include "tile/grid.h"
#include "tile/snb.h"
#include "util/dcheck.h"

namespace gstore::tile {

inline constexpr std::uint64_t kTileFileMagic = 0x4753544f52453154ULL;  // "GSTORE1T"
inline constexpr std::uint64_t kSeiFileMagic = 0x4753544f52453153ULL;   // "GSTORE1S"

// On-disk format versions this reader understands. v2 added the
// `generation` field (carved out of bytes v1 wrote as zero, so v1 files read
// back exactly as generation 0). v3 made per-tile codecs (tile/compress.h)
// the production payload format: the .sei grows a second byte-offset index
// and every non-empty tile payload starts with an 8-byte codec header.
// Readers must reject anything newer than kTileStoreVersionCurrent: trusting
// an unknown layout silently misparses.
inline constexpr std::uint32_t kTileStoreVersionMin = 1;
inline constexpr std::uint32_t kTileStoreVersionCurrent = 3;

struct TileStoreMeta {
  std::uint64_t magic = kSeiFileMagic;
  std::uint32_t version = kTileStoreVersionCurrent;
  // bit0: symmetric, bit1: directed, bit2: in-edges, bit3: fat (8B) tuples
  std::uint32_t flags = 0;
  std::uint64_t vertex_count = 0;
  std::uint64_t edge_count = 0;
  std::uint32_t tile_bits = 16;
  std::uint32_t group_side = 256;
  std::uint64_t tile_count = 0;
  // Compaction generation: 0 for freshly converted stores, bumped each time
  // the ingest subsystem folds a WAL into a new set of files (docs/INGEST.md).
  std::uint32_t generation = 0;
  std::uint32_t reserved32 = 0;
  std::uint64_t reserved[3] = {0, 0, 0};

  bool symmetric() const noexcept { return flags & 1u; }
  bool directed() const noexcept { return (flags >> 1) & 1u; }
  // For directed stores: tuples are (dst, src) — the store holds in-edges.
  bool in_edges() const noexcept { return (flags >> 2) & 1u; }
  // Non-SNB ablation format: tuples are two full 4-byte vertex ids.
  bool fat_tuples() const noexcept { return (flags >> 3) & 1u; }
  std::uint32_t tuple_bytes() const noexcept { return fat_tuples() ? 8 : 4; }
};
static_assert(sizeof(TileStoreMeta) == 80);

// A decoded, read-only view over one tile's edges sitting in some buffer.
// Normal stores carry SNB tuples in `edges`; the non-SNB ablation format
// carries full-vid tuples in `fat_edges`; v3 stores with a non-raw codec
// carry the encoded body in `payload` (header already parsed and sanitized
// by TileStore::view()). Exactly one representation is populated — iterate
// with visit_edges()/for_each_block() to stay format-agnostic.
struct TileView {
  TileCoord coord;
  graph::vid_t src_base = 0;
  graph::vid_t dst_base = 0;
  bool fat = false;
  TileCodec codec = TileCodec::kRaw;
  std::uint8_t src_bits = 0;                 // kPacked only
  std::uint8_t dst_bits = 0;                 // kPacked/kHybrid
  std::uint64_t coded_edges = 0;             // when codec != kRaw
  std::span<const std::uint8_t> payload;     // encoded body, codec != kRaw
  std::span<const SnbEdge> edges;            // when !fat && codec == kRaw
  std::span<const graph::Edge> fat_edges;    // when fat

  std::size_t edge_count() const noexcept {
    if (fat) return fat_edges.size();
    if (codec != TileCodec::kRaw) return static_cast<std::size_t>(coded_edges);
    return edges.size();
  }

  // Decoder inputs for an encoded view; fields were sanitized at view() time.
  TileCodecInfo codec_info() const noexcept {
    return TileCodecInfo{codec, src_bits, dst_bits, coded_edges, payload};
  }
};

// Rebuilds `v` as a raw in-memory view over `extra` (the overlay-splice
// pattern): same tile coordinates and bases, but raw SNB tuples replace
// whatever representation the base tile used on disk.
inline TileView splice_view(const TileView& v, std::span<const SnbEdge> extra) {
  TileView ov = v;
  ov.fat = false;
  ov.fat_edges = {};
  ov.codec = TileCodec::kRaw;
  ov.src_bits = 0;
  ov.dst_bits = 0;
  ov.coded_edges = 0;
  ov.payload = {};
  ov.edges = extra;
  return ov;
}

// Invokes fn(src_vid, dst_vid) for every edge of the tile, whichever
// representation it is stored in. The per-edge fallback and correctness
// oracle; hot loops use for_each_block() (edge_block.h) instead.
template <typename Fn>
inline void visit_edges(const TileView& v, Fn&& fn) {
  if (v.fat) {
    for (const graph::Edge& e : v.fat_edges) fn(e.src, e.dst);
  } else if (v.codec == TileCodec::kRaw) {
    for (const SnbEdge& e : v.edges)
      fn(v.src_base + e.src16, v.dst_base + e.dst16);
  } else {
    TileDecoder dec(v.codec_info());
    graph::vid_t s[256], d[256];
    std::size_t got;
    while ((got = dec.decode(s, d, 256, v.src_base, v.dst_base)) > 0)
      for (std::size_t k = 0; k < got; ++k) fn(s[k], d[k]);
  }
}

// Read-side handle over a converted graph. Thread-compatible: concurrent
// reads are safe through the underlying Device.
// Placement policy for tiered stores (paper §IX future work: SSD + HDD).
enum class TierPolicy {
  kHotPrefix,     // first hot_fraction of the file (in layout order) on SSD
  kLargestTiles,  // biggest tiles on SSD — the power-law mass lives there
};

class TileOverlay;

class TileStore {
 public:
  // Opens the live generation of the store at `base_path`: if a
  // `<base>.current` manifest exists (written by compaction) the
  // generation it names is opened, otherwise the legacy `<base>.tiles/.sei`
  // files themselves.
  static TileStore open(const std::string& base_path, io::DeviceConfig config = {});

  // Opens with tiered storage: `hot_fraction` of the data bytes are placed
  // on the fast tier (config.devices × per_device_bw); the rest are charged
  // against config.slow_tier_bw (must be non-zero). See io/tiering.h.
  static TileStore open_tiered(const std::string& base_path,
                               io::DeviceConfig config, double hot_fraction,
                               TierPolicy policy = TierPolicy::kLargestTiles);

  const Grid& grid() const noexcept { return grid_; }
  const TileStoreMeta& meta() const noexcept { return meta_; }
  graph::vid_t vertex_count() const noexcept {
    return static_cast<graph::vid_t>(meta_.vertex_count);
  }
  std::uint64_t edge_count() const noexcept { return meta_.edge_count; }

  std::uint64_t tile_edge_count(std::uint64_t layout_idx) const {
    GSTORE_DCHECK_LT(layout_idx, meta_.tile_count);
    // Offset monotonicity: validated once at open(), must never decay.
    GSTORE_DCHECK_LE(start_edge_[layout_idx], start_edge_[layout_idx + 1]);
    return start_edge_[layout_idx + 1] - start_edge_[layout_idx];
  }
  // Physical payload bytes of a tile in the .tiles file. v1/v2 derive this
  // from the edge count; v3 reads the byte index (codecs break the
  // edges-to-bytes proportionality).
  std::uint64_t tile_bytes(std::uint64_t layout_idx) const {
    if (packed_payloads_)
      return start_byte_[layout_idx + 1] - start_byte_[layout_idx];
    return tile_edge_count(layout_idx) * meta_.tuple_bytes();
  }
  // Byte offset of a tile inside the .tiles file (after the header).
  std::uint64_t tile_offset(std::uint64_t layout_idx) const {
    GSTORE_DCHECK_LE(layout_idx, meta_.tile_count);
    if (packed_payloads_) return data_offset_ + start_byte_[layout_idx];
    GSTORE_DCHECK_LE(start_edge_[layout_idx], meta_.edge_count);
    return data_offset_ + start_edge_[layout_idx] * meta_.tuple_bytes();
  }
  std::uint64_t max_tile_bytes() const noexcept { return max_tile_bytes_; }
  // Logical (decoded) data bytes — the working-set proxy cache/memory
  // budgets size against; physical footprint is storage_bytes().
  std::uint64_t data_bytes() const noexcept {
    return meta_.edge_count * meta_.tuple_bytes();
  }
  // True for v3 stores whose payloads are codec-encoded.
  bool packed_payloads() const noexcept { return packed_payloads_; }

  const std::vector<std::uint64_t>& start_edge() const noexcept {
    return start_edge_;
  }

  // Synchronously reads the contiguous byte range covering layout tiles
  // [first, last) into `buf` (must hold bytes_of_range(first,last)).
  std::uint64_t bytes_of_range(std::uint64_t first, std::uint64_t last) const {
    return tile_offset(last) - tile_offset(first);
  }
  void read_range(std::uint64_t first, std::uint64_t last, std::uint8_t* buf);

  // Builds a view over tile `layout_idx` whose raw bytes start at `data`
  // (e.g. inside a segment buffer that holds a contiguous range).
  TileView view(std::uint64_t layout_idx, const std::uint8_t* data) const;

  // Loads the degree file (throws if it was not written). When an overlay is
  // attached, its degree deltas are folded in, so algorithms see degrees
  // consistent with the edges the overlay read path will deliver.
  graph::CompressedDegrees load_degrees() const;

  io::Device& device() noexcept { return *device_; }

  // File-name helpers shared with the converter.
  static std::string tiles_path(const std::string& base) { return base + ".tiles"; }
  static std::string sei_path(const std::string& base) { return base + ".sei"; }
  static std::string deg_path(const std::string& base) { return base + ".deg"; }

  // Generation manifest (compaction's publish point): a tiny file holding
  // the decimal generation number whose files are live. Swapped by atomic
  // rename so a reader always sees exactly one complete generation.
  static std::string current_path(const std::string& base) {
    return base + ".current";
  }
  // File base of generation `gen`: the logical base itself for generation 0
  // (the layout gstore_convert writes), "<base>.g<N>" afterwards.
  static std::string generation_base(const std::string& base, std::uint32_t gen);
  // Maps a logical base to the file base of the live generation by reading
  // the manifest (if present). Throws FormatError on a garbled manifest.
  static std::string resolve(const std::string& base);

  // Attaches (or detaches, with nullptr) an overlay of un-compacted edges.
  // The overlay must outlive every subsequent read; see tile/overlay.h for
  // the reader/writer contract.
  void attach_overlay(const TileOverlay* overlay) noexcept { overlay_ = overlay; }
  const TileOverlay* overlay() const noexcept { return overlay_; }

  // Total on-disk footprint (tiles + start-edge index), the quantity the
  // paper's Table II calls "G-Store Size".
  std::uint64_t storage_bytes() const;

 private:
  TileStore() = default;

  std::string base_path_;
  TileStoreMeta meta_;
  Grid grid_;
  std::vector<std::uint64_t> start_edge_;  // size tile_count+1, in layout order
  std::vector<std::uint64_t> start_byte_;  // v3: payload byte offsets, same shape
  bool packed_payloads_ = false;           // v3 codec-encoded payloads
  std::uint64_t data_offset_ = 0;
  std::uint64_t max_tile_bytes_ = 0;
  std::unique_ptr<io::Device> device_;
  const TileOverlay* overlay_ = nullptr;
};

}  // namespace gstore::tile
