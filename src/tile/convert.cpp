#include "tile/convert.h"

#include <algorithm>
#include <numeric>

#include "graph/csr.h"
#include "io/file.h"
#include "tile/grid.h"
#include "tile/snb.h"
#include "tile/tile_file.h"
#include "util/status.h"
#include "util/timer.h"

namespace gstore::tile {

namespace {
struct TilesFileHeader {
  std::uint64_t magic = kTileFileMagic;
  std::uint32_t version = kTileStoreVersionCurrent;
  std::uint32_t pad = 0;
  std::uint64_t edge_count = 0;
  std::uint64_t reserved[5] = {0, 0, 0, 0, 0};
};
static_assert(sizeof(TilesFileHeader) == 64);
}  // namespace

ConvertStats convert_to_tiles(const graph::EdgeList& el, const std::string& base_path,
                              ConvertOptions options) {
  GS_CHECK_MSG(el.vertex_count() > 0, "cannot convert empty graph");
  Timer total;
  ConvertStats stats;

  const bool undirected = el.kind() == graph::GraphKind::kUndirected;
  const bool symmetric = undirected && options.symmetry;
  const Grid grid(el.vertex_count(), symmetric, options.tile_bits,
                  options.group_side);

  // Enumerates the tuples that will be stored, already oriented for their
  // tile: upper-triangle canonical (symmetric), both orientations (full
  // matrix), or the chosen direction (directed).
  auto for_each_stored = [&](auto&& fn) {
    for (graph::Edge e : el.edges()) {
      if (options.drop_self_loops && e.src == e.dst) continue;
      if (undirected) {
        if (options.symmetry) {
          if (e.src > e.dst) std::swap(e.src, e.dst);
          fn(e);
        } else {
          fn(e);
          if (e.src != e.dst) fn(graph::Edge{e.dst, e.src});
        }
      } else {
        if (!options.out_edges) std::swap(e.src, e.dst);
        fn(e);
      }
    }
  };

  // ---- Pass 1: per-tile edge counts → start-edge array (like beg-pos). ----
  Timer t1;
  std::vector<std::uint64_t> start(grid.tile_count() + 1, 0);
  for_each_stored([&](graph::Edge e) {
    const TileCoord c = grid.tile_of(e.src, e.dst);
    ++start[grid.layout_index(c.i, c.j) + 1];
  });
  std::partial_sum(start.begin(), start.end(), start.begin());
  stats.stored_edges = start.back();
  stats.tile_count = grid.tile_count();
  stats.pass1_seconds = t1.seconds();

  // ---- Pass 2: scatter tuples to their layout slots and write. ----
  Timer t2;
  std::vector<SnbEdge> snb_data;
  std::vector<graph::Edge> fat_data;
  {
    std::vector<std::uint64_t> cursor(start.begin(), start.end() - 1);
    if (options.snb) {
      snb_data.resize(stats.stored_edges);
      for_each_stored([&](graph::Edge e) {
        const TileCoord c = grid.tile_of(e.src, e.dst);
        const std::uint64_t k = grid.layout_index(c.i, c.j);
        snb_data[cursor[k]++] = snb_encode(e.src, e.dst, grid.tile_base(c.i),
                                           grid.tile_base(c.j));
      });
    } else {
      fat_data.resize(stats.stored_edges);
      for_each_stored([&](graph::Edge e) {
        const TileCoord c = grid.tile_of(e.src, e.dst);
        fat_data[cursor[grid.layout_index(c.i, c.j)]++] = e;
      });
    }
  }

  // v3 (per-tile codecs) only exists for the SNB format; the fat-tuple
  // ablation and the compress=false baseline keep writing the v2 layout
  // bit-identically to older gstores.
  const bool v3 = options.snb && options.compress;
  const std::uint32_t version = v3 ? 3 : 2;
  std::vector<std::uint64_t> start_byte;
  const std::size_t tuple_bytes = options.snb ? sizeof(SnbEdge) : sizeof(graph::Edge);
  {
    io::File tiles(TileStore::tiles_path(base_path), io::OpenMode::kWrite);
    TilesFileHeader th;
    th.version = version;
    th.edge_count = stats.stored_edges;
    tiles.append(&th, sizeof(th));
    if (v3) {
      // Sort each tile slice (order inside a tile is not semantic, sorted
      // rows are what the run/delta codecs exploit), encode it with the
      // smallest codec, and record the payload byte offsets.
      start_byte.assign(grid.tile_count() + 1, 0);
      std::vector<std::uint8_t> buf;
      for (std::uint64_t k = 0; k < grid.tile_count(); ++k) {
        const std::uint64_t lo = start[k], hi = start[k + 1];
        start_byte[k] = stats.payload_bytes;
        if (lo == hi) continue;
        std::sort(snb_data.begin() + lo, snb_data.begin() + hi);
        const std::vector<std::uint8_t> payload = compress_tile(
            std::span<const SnbEdge>(snb_data.data() + lo, hi - lo));
        ++stats.codec_tiles[payload[0]];
        stats.payload_bytes += payload.size();
        buf.insert(buf.end(), payload.begin(), payload.end());
        if (buf.size() >= (4u << 20)) {
          tiles.append(buf.data(), buf.size());
          buf.clear();
        }
      }
      start_byte.back() = stats.payload_bytes;
      if (!buf.empty()) tiles.append(buf.data(), buf.size());
      stats.bytes_written += sizeof(th) + stats.payload_bytes;
    } else {
      if (options.snb) {
        if (!snb_data.empty())
          tiles.append(snb_data.data(), snb_data.size() * sizeof(SnbEdge));
      } else if (!fat_data.empty()) {
        tiles.append(fat_data.data(), fat_data.size() * sizeof(graph::Edge));
      }
      stats.bytes_written += sizeof(th) + stats.stored_edges * tuple_bytes;
    }
    tiles.sync();
  }
  {
    io::File sei(TileStore::sei_path(base_path), io::OpenMode::kWrite);
    TileStoreMeta meta;
    meta.version = version;
    const bool directed = el.kind() == graph::GraphKind::kDirected;
    meta.flags = (symmetric ? 1u : 0u) | (directed ? 2u : 0u) |
                 (directed && !options.out_edges ? 4u : 0u) |
                 (options.snb ? 0u : 8u);
    meta.vertex_count = el.vertex_count();
    meta.edge_count = stats.stored_edges;
    meta.tile_bits = options.tile_bits;
    meta.group_side = grid.group_side();
    meta.tile_count = grid.tile_count();
    meta.generation = options.generation;
    sei.append(&meta, sizeof(meta));
    sei.append(start.data(), start.size() * sizeof(std::uint64_t));
    if (v3)
      sei.append(start_byte.data(), start_byte.size() * sizeof(std::uint64_t));
    sei.sync();
    stats.bytes_written += sizeof(meta) +
                           (v3 ? 2 : 1) * start.size() * sizeof(std::uint64_t);
  }
  if (options.write_degrees) {
    const std::vector<graph::degree_t> deg = el.degrees();
    io::File f(TileStore::deg_path(base_path), io::OpenMode::kWrite);
    if (!deg.empty()) f.append(deg.data(), deg.size() * sizeof(graph::degree_t));
    f.sync();
  }
  stats.pass2_seconds = t2.seconds();
  stats.total_seconds = total.seconds();
  return stats;
}

CsrFileStats convert_to_csr_file(const graph::EdgeList& el,
                                 const std::string& base_path) {
  Timer total;
  CsrFileStats stats;
  const graph::Csr csr = graph::Csr::build(el);
  {
    io::File beg(base_path + ".beg", io::OpenMode::kWrite);
    beg.append(csr.beg_pos().data(),
               csr.beg_pos().size() * sizeof(std::uint64_t));
    beg.sync();
    stats.bytes_written += csr.beg_pos().size() * sizeof(std::uint64_t);
  }
  {
    io::File adj(base_path + ".adj", io::OpenMode::kWrite);
    if (!csr.adj_list().empty())
      adj.append(csr.adj_list().data(),
                 csr.adj_list().size() * sizeof(graph::vid_t));
    adj.sync();
    stats.bytes_written += csr.adj_list().size() * sizeof(graph::vid_t);
  }
  stats.total_seconds = total.seconds();
  return stats;
}

}  // namespace gstore::tile
