#include "tile/verify.h"

#include <optional>
#include <vector>

#include <numeric>

#include "graph/degree.h"
#include "ingest/wal.h"
#include "io/file.h"
#include "tile/tile_file.h"
#include "util/status.h"

namespace gstore::tile {

VerifyReport verify_store(const std::string& base_path,
                          std::size_t max_problems) {
  VerifyReport report;

  std::optional<TileStore> opened;
  try {
    opened.emplace(TileStore::open(base_path));
  } catch (const Error& e) {
    report.fail(std::string("open failed: ") + e.what());
    return report;
  }
  TileStore& store = *opened;

  const Grid& grid = store.grid();
  const graph::vid_t n = store.vertex_count();
  const bool symmetric = store.meta().symmetric();
  std::vector<graph::degree_t> recomputed(n, 0);

  std::vector<std::uint8_t> buf;
  for (std::uint64_t k = 0; k < grid.tile_count(); ++k) {
    if (!report.ok && report.problems.size() >= max_problems) break;
    const std::uint64_t bytes = store.tile_bytes(k);
    ++report.tiles_checked;
    if (bytes == 0) continue;
    buf.resize(bytes);
    store.read_range(k, k + 1, buf.data());
    const TileCoord c = grid.coord_at(k);
    const graph::vid_t src_lo = grid.tile_base(c.i);
    const graph::vid_t dst_lo = grid.tile_base(c.j);
    const std::uint64_t width = grid.tile_width();

    // v3 payload cross-check with the independent decoder: codec byte and
    // width header valid, declared count == .sei count, body decodes to
    // exactly that many edges, every local id inside the tile width. The
    // streaming path (visit_edges below) is then compared edge-for-edge.
    std::vector<SnbEdge> oracle;
    if (store.packed_payloads()) {
      try {
        oracle = decompress_tile(
            std::span<const std::uint8_t>(buf.data(), bytes));
        if (oracle.size() != store.tile_edge_count(k))
          report.fail("tile (" + std::to_string(c.i) + "," +
                      std::to_string(c.j) + "): payload declares " +
                      std::to_string(oracle.size()) +
                      " edges, start-edge index requires " +
                      std::to_string(store.tile_edge_count(k)));
        for (const SnbEdge& e : oracle) {
          if (e.src16 >= width || e.dst16 >= width) {
            report.fail("tile (" + std::to_string(c.i) + "," +
                        std::to_string(c.j) + "): local id (" +
                        std::to_string(e.src16) + "," +
                        std::to_string(e.dst16) +
                        ") outside the tile width " + std::to_string(width));
            break;
          }
        }
        ++report.payloads_checked;
      } catch (const Error& e) {
        report.fail("tile (" + std::to_string(c.i) + "," + std::to_string(c.j) +
                    "): payload rejected: " + e.what());
        continue;
      }
      if (!report.ok && report.problems.size() >= max_problems) break;
    }

    TileView view;
    try {
      view = store.view(k, buf.data());
    } catch (const Error& e) {
      report.fail("tile (" + std::to_string(c.i) + "," + std::to_string(c.j) +
                  "): view rejected: " + e.what());
      continue;
    }

    std::size_t at = 0;
    try {
    visit_edges(view, [&](graph::vid_t a, graph::vid_t b) {
      ++report.edges_checked;
      if (report.problems.size() >= max_problems) return;
      if (a < src_lo || a >= src_lo + width || b < dst_lo ||
          b >= dst_lo + width)
        report.fail("tile (" + std::to_string(c.i) + "," + std::to_string(c.j) +
                    "): edge (" + std::to_string(a) + "," + std::to_string(b) +
                    ") outside tile vertex ranges");
      if (a >= n || b >= n)
        report.fail("edge endpoint beyond vertex count: (" +
                    std::to_string(a) + "," + std::to_string(b) + ")");
      if (symmetric && a > b)
        report.fail("lower-triangle tuple in symmetric store: (" +
                    std::to_string(a) + "," + std::to_string(b) + ")");
      if (!oracle.empty() && at < oracle.size() &&
          (a != src_lo + oracle[at].src16 || b != dst_lo + oracle[at].dst16))
        report.fail("tile (" + std::to_string(c.i) + "," + std::to_string(c.j) +
                    "): streaming decoder disagrees with the payload oracle "
                    "at edge " + std::to_string(at));
      ++at;
      if (a < n && b < n) {
        ++recomputed[a];
        if (symmetric && a != b) ++recomputed[b];
      }
    });
    } catch (const Error& e) {
      report.fail("tile (" + std::to_string(c.i) + "," + std::to_string(c.j) +
                  "): streaming decode failed: " + e.what());
    }
  }

  // Counting symmetry: every stored tuple bumps the recomputed degrees a
  // fixed number of times (twice in upper-triangle stores — each tuple is
  // both directions — once everywhere else), so their sum must reproduce the
  // header's edge count exactly. A diagonal tuple in a symmetric store, a
  // lost tuple, or a header miscount all break this identity.
  if (report.ok) {
    const std::uint64_t sum = std::accumulate(
        recomputed.begin(), recomputed.end(), std::uint64_t{0},
        [](std::uint64_t acc, graph::degree_t d) { return acc + d; });
    const std::uint64_t expect =
        symmetric ? 2 * store.edge_count() : store.edge_count();
    if (sum != expect)
      report.fail("counting symmetry broken: tuple-derived degree sum is " +
                  std::to_string(sum) + ", header edge count requires " +
                  std::to_string(expect));
  }

  // Degree cross-check (optional file). The .deg file records edge-list
  // degrees, which include self loops the converter drops, so tile-derived
  // degrees are a lower bound. In-edge stores record out-degrees while the
  // tiles yield in-degrees — no comparison is possible there.
  const std::string live_base = TileStore::resolve(base_path);
  if (report.ok && io::File::exists(TileStore::deg_path(live_base))) {
    const std::uint64_t deg_bytes =
        io::File::file_size(TileStore::deg_path(live_base));
    if (deg_bytes != n * sizeof(graph::degree_t)) {
      report.fail("degree file holds " + std::to_string(deg_bytes) +
                  " bytes; " + std::to_string(n) + " vertices require " +
                  std::to_string(n * sizeof(graph::degree_t)));
    } else {
      const bool comparable =
          symmetric || (store.meta().directed() && !store.meta().in_edges());
      if (comparable) {
        const graph::CompressedDegrees deg = store.load_degrees();
        for (graph::vid_t v = 0; v < n; ++v) {
          if (deg[v] < recomputed[v]) {
            report.fail("degree mismatch at vertex " + std::to_string(v) +
                        ": file says " + std::to_string(deg[v]) +
                        ", tiles require at least " +
                        std::to_string(recomputed[v]));
            if (report.problems.size() >= max_problems) break;
          }
        }
      }
    }
  }

  // WAL cross-check (optional file, lives at the *logical* base — it spans
  // generations). Torn tails are a legal crash artifact, but a fully present
  // frame failing its CRC is corruption, as is a replayed edge outside the
  // store's vertex range.
  const std::string wal_path = ingest::EdgeWal::path_for(base_path);
  if (io::File::exists(wal_path)) {
    try {
      const ingest::WalReplay wal = ingest::EdgeWal::replay(wal_path);
      report.wal_frames_checked = wal.frames;
      report.wal_edges_checked = wal.edges.size();
      if (wal.tail == ingest::WalTail::kCorrupt)
        report.fail("WAL " + wal_path + " holds a corrupt frame after " +
                    std::to_string(wal.frames) + " intact frames");
      if (wal.exists && wal.generation == store.meta().generation) {
        for (const graph::Edge& e : wal.edges) {
          if (e.src >= n || e.dst >= n) {
            report.fail("WAL edge (" + std::to_string(e.src) + "," +
                        std::to_string(e.dst) + ") outside vertex range");
            break;
          }
        }
      }
    } catch (const Error& e) {
      report.fail(std::string("WAL replay failed: ") + e.what());
    }
  }
  return report;
}

}  // namespace gstore::tile
