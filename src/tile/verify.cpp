#include "tile/verify.h"

#include <optional>
#include <vector>

#include "graph/degree.h"
#include "io/file.h"
#include "tile/tile_file.h"
#include "util/status.h"

namespace gstore::tile {

VerifyReport verify_store(const std::string& base_path,
                          std::size_t max_problems) {
  VerifyReport report;

  std::optional<TileStore> opened;
  try {
    opened.emplace(TileStore::open(base_path));
  } catch (const Error& e) {
    report.fail(std::string("open failed: ") + e.what());
    return report;
  }
  TileStore& store = *opened;

  const Grid& grid = store.grid();
  const graph::vid_t n = store.vertex_count();
  const bool symmetric = store.meta().symmetric();
  std::vector<graph::degree_t> recomputed(n, 0);

  std::vector<std::uint8_t> buf;
  for (std::uint64_t k = 0; k < grid.tile_count(); ++k) {
    if (!report.ok && report.problems.size() >= max_problems) break;
    const std::uint64_t bytes = store.tile_bytes(k);
    ++report.tiles_checked;
    if (bytes == 0) continue;
    buf.resize(bytes);
    store.read_range(k, k + 1, buf.data());
    const TileView view = store.view(k, buf.data());
    const TileCoord c = view.coord;
    const graph::vid_t src_lo = grid.tile_base(c.i);
    const graph::vid_t dst_lo = grid.tile_base(c.j);
    const std::uint64_t width = grid.tile_width();

    visit_edges(view, [&](graph::vid_t a, graph::vid_t b) {
      ++report.edges_checked;
      if (report.problems.size() >= max_problems) return;
      if (a < src_lo || a >= src_lo + width || b < dst_lo ||
          b >= dst_lo + width)
        report.fail("tile (" + std::to_string(c.i) + "," + std::to_string(c.j) +
                    "): edge (" + std::to_string(a) + "," + std::to_string(b) +
                    ") outside tile vertex ranges");
      if (a >= n || b >= n)
        report.fail("edge endpoint beyond vertex count: (" +
                    std::to_string(a) + "," + std::to_string(b) + ")");
      if (symmetric && a > b)
        report.fail("lower-triangle tuple in symmetric store: (" +
                    std::to_string(a) + "," + std::to_string(b) + ")");
      if (a < n && b < n) {
        ++recomputed[a];
        if (symmetric && a != b) ++recomputed[b];
      }
    });
  }

  // Degree cross-check (optional file). The .deg file records edge-list
  // degrees, which include self loops the converter drops, so tile-derived
  // degrees are a lower bound. In-edge stores record out-degrees while the
  // tiles yield in-degrees — no comparison is possible there.
  if (report.ok && io::File::exists(TileStore::deg_path(base_path))) {
    const bool comparable =
        symmetric || (store.meta().directed() && !store.meta().in_edges());
    if (comparable) {
      const graph::CompressedDegrees deg = store.load_degrees();
      for (graph::vid_t v = 0; v < n; ++v) {
        if (deg[v] < recomputed[v]) {
          report.fail("degree mismatch at vertex " + std::to_string(v) +
                      ": file says " + std::to_string(deg[v]) +
                      ", tiles require at least " +
                      std::to_string(recomputed[v]));
          if (report.problems.size() >= max_problems) break;
        }
      }
    }
  }
  return report;
}

}  // namespace gstore::tile
