// 2D tile grid geometry and the physical-group disk layout (paper §IV, §V-A).
//
// The adjacency matrix is cut into p×p tiles of 2^tile_bits vertices per
// side. Undirected graphs store only the upper triangle (j >= i); directed
// graphs store one direction (all i,j). On disk, tiles are not written in
// plain row-major order: they are grouped into physical groups of
// group_side × group_side tiles so that one group's algorithmic metadata
// fits in the LLC and a whole group reads sequentially (Fig 6).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace gstore::tile {

struct TileCoord {
  std::uint32_t i = 0;  // tile row (source range)
  std::uint32_t j = 0;  // tile column (destination range)

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

class Grid {
 public:
  Grid() = default;

  // `symmetric` selects upper-triangle storage (undirected graphs).
  // `tile_bits` ≤ 16 so SNB local ids fit uint16_t. `group_side` is q,
  // the number of tiles per physical-group side.
  Grid(graph::vid_t vertex_count, bool symmetric, unsigned tile_bits = 16,
       std::uint32_t group_side = 256);

  graph::vid_t vertex_count() const noexcept { return vertex_count_; }
  unsigned tile_bits() const noexcept { return tile_bits_; }
  graph::vid_t tile_width() const noexcept { return graph::vid_t{1} << tile_bits_; }
  bool symmetric() const noexcept { return symmetric_; }

  // Tiles per side (p in the paper).
  std::uint32_t p() const noexcept { return p_; }
  // Tiles per physical-group side (q in the paper), clamped to p.
  std::uint32_t group_side() const noexcept { return q_; }
  // Groups per side (g = ceil(p/q)).
  std::uint32_t groups_per_side() const noexcept { return g_; }
  std::uint64_t group_count() const noexcept;

  // Number of stored tiles: p^2, or p(p+1)/2 for symmetric storage.
  std::uint64_t tile_count() const noexcept { return tile_count_; }

  std::uint32_t tile_row_of(graph::vid_t v) const noexcept {
    return static_cast<std::uint32_t>(v >> tile_bits_);
  }
  graph::vid_t tile_base(std::uint32_t index) const noexcept {
    return static_cast<graph::vid_t>(index) << tile_bits_;
  }

  bool tile_exists(std::uint32_t i, std::uint32_t j) const noexcept {
    return i < p_ && j < p_ && (!symmetric_ || j >= i);
  }

  // Tile coordinate of an edge after canonicalization (caller must have
  // swapped endpoints for undirected edges so src <= dst).
  TileCoord tile_of(graph::vid_t src, graph::vid_t dst) const noexcept {
    return TileCoord{tile_row_of(src), tile_row_of(dst)};
  }

  // Layout index: position of tile (i,j) in the on-disk order (groups in
  // row-major order; tiles row-major within a group; nonexistent tiles
  // skipped). Throws InvalidArgument for nonexistent tiles.
  std::uint64_t layout_index(std::uint32_t i, std::uint32_t j) const;
  TileCoord coord_at(std::uint64_t layout_index) const;

  // Group id (row-major over the g×g group grid) containing tile (i,j).
  std::uint64_t group_of(std::uint32_t i, std::uint32_t j) const noexcept {
    return static_cast<std::uint64_t>(i / q_) * g_ + (j / q_);
  }
  // Layout index range [first, last) of the tiles belonging to `group`.
  // Empty range for groups with no stored tiles (below the diagonal).
  std::pair<std::uint64_t, std::uint64_t> group_range(std::uint64_t group) const;

 private:
  void build_layout();

  graph::vid_t vertex_count_ = 0;
  bool symmetric_ = true;
  unsigned tile_bits_ = 16;
  std::uint32_t p_ = 0;
  std::uint32_t q_ = 1;
  std::uint32_t g_ = 0;
  std::uint64_t tile_count_ = 0;
  std::vector<std::uint64_t> group_start_;   // layout index where each group begins; size g*g+1
  std::vector<TileCoord> layout_to_coord_;   // size tile_count_
  std::vector<std::uint64_t> coord_to_layout_;  // size p*p, ~0 for nonexistent
};

}  // namespace gstore::tile
