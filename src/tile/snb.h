// SNB — "smallest number of bits" edge representation (paper §IV-B).
//
// Inside tile[i,j] every source vertex shares the high bits `i` and every
// destination the high bits `j`, so an edge is stored as two 16-bit local
// ids (4 bytes total) regardless of graph size. The tile coordinates are
// re-attached on decode: global = (tile_index << tile_bits) | local.
#pragma once

#include <cstdint>

#include "graph/types.h"
#include "util/dcheck.h"

namespace gstore::tile {

// One on-disk edge tuple: 4 bytes, the paper's format.
struct SnbEdge {
  std::uint16_t src16 = 0;
  std::uint16_t dst16 = 0;

  friend bool operator==(const SnbEdge&, const SnbEdge&) = default;
  friend auto operator<=>(const SnbEdge&, const SnbEdge&) = default;
};
static_assert(sizeof(SnbEdge) == 4, "SNB edge tuple must be 4 bytes");

// Encodes a global edge into tile-local form. `src_base`/`dst_base` are the
// first vertex ids covered by the tile row/column.
constexpr SnbEdge snb_encode(graph::vid_t src, graph::vid_t dst,
                             graph::vid_t src_base, graph::vid_t dst_base) noexcept {
  // The casts below silently wrap if a vertex lands outside its tile's
  // 2^16 range — that is exactly the corruption an SNB bug produces, so the
  // debug builds reject it here rather than at verify time.
  GSTORE_DCHECK_GE(src, src_base);
  GSTORE_DCHECK_GE(dst, dst_base);
  GSTORE_DCHECK_LT(src - src_base, 1u << 16);
  GSTORE_DCHECK_LT(dst - dst_base, 1u << 16);
  return SnbEdge{static_cast<std::uint16_t>(src - src_base),
                 static_cast<std::uint16_t>(dst - dst_base)};
}

constexpr graph::Edge snb_decode(SnbEdge e, graph::vid_t src_base,
                                 graph::vid_t dst_base) noexcept {
  return graph::Edge{src_base + e.src16, dst_base + e.dst16};
}

}  // namespace gstore::tile
