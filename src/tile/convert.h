// Two-pass edge-list → tile-store converter (paper §IV-B "Implementation")
// and the CSR-file converter used as the Table I comparison point.
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.h"

namespace gstore::tile {

struct ConvertOptions {
  unsigned tile_bits = 16;
  std::uint32_t group_side = 256;
  // For directed graphs: store out-edges (true) or in-edges (false). The
  // paper stores one of the two; algorithms adapt (Algorithm 2).
  bool out_edges = true;
  // Drop self loops during conversion (they carry no information for the
  // three paper algorithms).
  bool drop_self_loops = true;
  bool write_degrees = true;
  // ---- Fig 10 ablation knobs (both default to the paper's format) ----
  // SNB 4-byte tuples; false writes 8-byte full-vid tuples ("no SNB").
  bool snb = true;
  // Upper-triangle storage for undirected graphs; false stores both
  // orientations ("no symmetry", the traditional 2D-partitioned layout).
  bool symmetry = true;
  // Per-tile codec compression (store format v3): each tile slice is sorted
  // and encoded with the smallest of the tile/compress.h codecs. false (or
  // snb = false, which has no codec path) writes the uncompressed v2 layout
  // bit-identically to older gstores — the ablation baseline and the
  // backward-compat test writer.
  bool compress = true;
  // Compaction generation stamped into TileStoreMeta. gstore_convert always
  // writes 0; ingest::compact_store reuses the converter with old+1.
  std::uint32_t generation = 0;
};

struct ConvertStats {
  double pass1_seconds = 0;  // start-edge (counting) pass
  double pass2_seconds = 0;  // scatter pass + write
  double total_seconds = 0;
  std::uint64_t stored_edges = 0;
  std::uint64_t tile_count = 0;
  std::uint64_t bytes_written = 0;
  // v3 only: total encoded payload bytes (headers + bodies + padding) and
  // how many tiles each codec won (indexed by tile::TileCodec).
  std::uint64_t payload_bytes = 0;
  std::uint64_t codec_tiles[5] = {0, 0, 0, 0, 0};
};

// Converts and writes <base>.tiles/.sei/.deg. Returns timing/size stats.
ConvertStats convert_to_tiles(const graph::EdgeList& el, const std::string& base_path,
                              ConvertOptions options = {});

// Builds a CSR and writes <base>.adj/.beg — the conversion G-Store's Table I
// compares against. Undirected edges are stored in both adjacency lists.
struct CsrFileStats {
  double total_seconds = 0;
  std::uint64_t bytes_written = 0;
};
CsrFileStats convert_to_csr_file(const graph::EdgeList& el,
                                 const std::string& base_path);

}  // namespace gstore::tile
