// EdgeIngestor: the online write path's front door.
//
// Owns the open TileStore, the WAL writer, and the delta overlay for one
// logical store base, wiring them together:
//
//   ingest(batch)  →  WAL append + fsync (durability point)
//                  →  delta buffer (grouped by tile, SNB-encoded)
//                  →  visible to the attached store's tile scans immediately
//
//   compact()      →  ingest::compact_store + reopen on the new generation
//
// On construction it recovers: a WAL for the store's current generation is
// replayed into the delta buffer (edges acknowledged before a crash are
// queryable again); a stale-generation WAL is discarded (its edges already
// live in the tiles).
//
// Synchronization: the write path (ingest/compact) is serialized under an
// internal mutex, so concurrent writers are safe. Reads through store() /
// delta() follow the engine-reads-between-writes TileOverlay contract: the
// caller must not run algorithms against the store while a compact() is in
// flight (compaction swaps the whole file set out from under the overlay).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "graph/types.h"
#include "ingest/compact.h"
#include "ingest/delta.h"
#include "ingest/wal.h"
#include "io/device.h"
#include "tile/tile_file.h"
#include "util/sync.h"

namespace gstore::ingest {

struct IngestorOptions {
  // Delta-buffer allocation; full() past this triggers compaction when
  // auto_compact is set, otherwise ingest() keeps accepting (callers that
  // manage compaction themselves can watch delta().full()).
  std::uint64_t delta_budget_bytes = 64ull << 20;
  bool auto_compact = false;
  io::DeviceConfig device;
};

class EdgeIngestor {
 public:
  explicit EdgeIngestor(std::string base, IngestorOptions options = {});

  // Durably appends the batch to the WAL (one frame, one fsync), then makes
  // it visible through the overlay. Edges are given in original (src, dst)
  // orientation; self loops are dropped; endpoints outside the store's
  // vertex range throw InvalidArgument before anything is written. Returns
  // the number of edges accepted. May trigger a compaction afterwards when
  // auto_compact is set and the delta is over budget.
  std::uint64_t ingest(std::span<const graph::Edge> edges) GSTORE_EXCLUDES(mu_);

  // Folds the WAL into a new store generation and reopens on it. The delta
  // buffer is empty afterwards. Invalidates references from store() across
  // the call.
  CompactStats compact(CompactOptions opts = {}) GSTORE_EXCLUDES(mu_);

  // The open store, with the delta overlay attached: run algorithms against
  // it and they observe base + un-compacted edges.
  //
  // SAFETY: reads are lock-free by design (engine-reads-between-writes — the
  // overlay contract documented above); the caller guarantees no concurrent
  // compact(), so the pointers below are stable while a reader holds them.
  tile::TileStore& store() noexcept GSTORE_NO_THREAD_SAFETY_ANALYSIS {
    return *store_;
  }
  // SAFETY: same reads-between-writes contract as the non-const overload.
  const tile::TileStore& store() const noexcept GSTORE_NO_THREAD_SAFETY_ANALYSIS {
    return *store_;
  }
  // SAFETY: same reads-between-writes contract as store().
  const DeltaBuffer& delta() const noexcept GSTORE_NO_THREAD_SAFETY_ANALYSIS {
    return *delta_;
  }
  std::uint32_t generation() const GSTORE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return store_->meta().generation;
  }

  // A consistent point-in-time snapshot of the write path's state: the live
  // generation number together with a frozen copy of the delta buffer,
  // taken atomically under the ingest lock (so the copy never observes a
  // half-applied batch, and the generation always matches the copy). The
  // copy is immutable — safe to read from any number of threads while
  // ingest()/compact() keep mutating the live buffer. Serving jobs pin
  // their input this way (src/serve/snapshot.h).
  struct Snapshot {
    std::uint32_t generation = 0;
    // Logical edges in `delta` — with `generation` this keys snapshot
    // identity: two snapshots with equal (generation, delta_edges) saw the
    // same data (the delta is append-only between compactions).
    std::uint64_t delta_edges = 0;
    std::shared_ptr<const DeltaBuffer> delta;  // null when the delta is empty
  };
  Snapshot snapshot() const GSTORE_EXCLUDES(mu_);
  std::uint64_t wal_bytes() const GSTORE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return wal_->size_bytes();
  }
  // Logical edges currently in the delta buffer — with generation() this is
  // the cheap half of snapshot identity (see Snapshot::delta_edges).
  std::uint64_t delta_edges() const GSTORE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return delta_->ingested_edges();
  }
  const std::string& base() const noexcept { return base_; }

 private:
  void open_generation() GSTORE_REQUIRES(mu_);
  CompactStats compact_locked(CompactOptions opts) GSTORE_REQUIRES(mu_);

  const std::string base_;
  const IngestorOptions options_;
  mutable Mutex mu_{"EdgeIngestor::mu_"};
  std::optional<tile::TileStore> store_ GSTORE_GUARDED_BY(mu_);
  std::unique_ptr<DeltaBuffer> delta_ GSTORE_GUARDED_BY(mu_);
  std::unique_ptr<EdgeWal> wal_ GSTORE_GUARDED_BY(mu_);
};

}  // namespace gstore::ingest
