#include "ingest/compact.h"

#include <chrono>
#include <utility>
#include <vector>

#include "graph/edge_list.h"
#include "ingest/wal.h"
#include "io/file.h"
#include "tile/convert.h"
#include "tile/tile_file.h"

namespace gstore::ingest {

namespace {

// Reads every tile of `store` and decodes the tuples back to the original
// (src, dst) edge orientation the converter expects as input:
//   symmetric upper-triangle  → tuples already canonical, keep as-is;
//   full-matrix undirected    → both orientations stored, keep only src < dst
//                               or the converter would double them again;
//   directed in-edge store    → tuples are (dst, src), swap back;
//   directed out-edge store   → keep as-is.
std::vector<graph::Edge> decode_base_edges(tile::TileStore& store) {
  const tile::TileStoreMeta& meta = store.meta();
  std::vector<graph::Edge> out;
  out.reserve(meta.symmetric() || meta.directed() ? meta.edge_count
                                                  : meta.edge_count / 2);
  const bool full_matrix = !meta.directed() && !meta.symmetric();
  const bool swap_back = meta.directed() && meta.in_edges();
  std::vector<std::uint8_t> buf;
  for (std::uint64_t idx = 0; idx < meta.tile_count; ++idx) {
    const std::uint64_t bytes = store.tile_bytes(idx);
    if (bytes == 0) continue;
    buf.resize(bytes);
    store.read_range(idx, idx + 1, buf.data());
    const tile::TileView v = store.view(idx, buf.data());
    tile::visit_edges(v, [&](graph::vid_t s, graph::vid_t d) {
      if (full_matrix && s >= d) return;
      if (swap_back) out.push_back({d, s});
      else out.push_back({s, d});
    });
  }
  return out;
}

void fsync_file(const std::string& path) {
  io::File f(path, io::OpenMode::kRead);
  f.sync();
}

}  // namespace

void remove_generation_files(const std::string& gen_base) noexcept {
  for (const std::string& p : {tile::TileStore::tiles_path(gen_base),
                               tile::TileStore::sei_path(gen_base),
                               tile::TileStore::deg_path(gen_base)}) {
    try {
      io::File::remove(p);
    } catch (const IoError&) {
      // Best effort: a generation file we cannot unlink only wastes disk;
      // the manifest already points elsewhere.
    }
  }
}

CompactStats compact_store(const std::string& base, CompactOptions opts) {
  const auto t0 = std::chrono::steady_clock::now();
  CompactStats stats;

  // 1. Merge: old generation's edges + WAL edges, original orientation.
  std::vector<graph::Edge> merged;
  tile::TileStoreMeta meta;
  {
    tile::TileStore store = tile::TileStore::open(base);
    meta = store.meta();
    merged = decode_base_edges(store);
  }
  stats.old_generation = meta.generation;
  stats.new_generation = meta.generation + 1;
  stats.base_edges = merged.size();

  const WalReplay wal = EdgeWal::replay(EdgeWal::path_for(base));
  if (wal.exists && wal.generation == meta.generation) {
    stats.wal_edges = wal.edges.size();
    merged.insert(merged.end(), wal.edges.begin(), wal.edges.end());
  }
  stats.merged_edges = merged.size();

  graph::EdgeList el(std::move(merged),
                     static_cast<graph::vid_t>(meta.vertex_count),
                     meta.directed() ? graph::GraphKind::kDirected
                                     : graph::GraphKind::kUndirected);

  // 2. Re-convert into the next generation's file set and make it durable.
  tile::ConvertOptions copts;
  copts.tile_bits = meta.tile_bits;
  copts.group_side = meta.group_side;
  copts.out_edges = !meta.in_edges();
  copts.snb = !meta.fat_tuples();
  copts.symmetry = meta.symmetric();
  // Compaction always re-encodes SNB stores with the current (v3) codec
  // format — folding a WAL is the natural upgrade point for v1/v2 stores.
  copts.compress = copts.snb;
  copts.generation = stats.new_generation;
  const std::string new_base =
      tile::TileStore::generation_base(base, stats.new_generation);
  const tile::ConvertStats cs = tile::convert_to_tiles(el, new_base, copts);
  stats.bytes_written = cs.bytes_written;
  fsync_file(tile::TileStore::tiles_path(new_base));
  fsync_file(tile::TileStore::sei_path(new_base));
  fsync_file(tile::TileStore::deg_path(new_base));
  io::fsync_dir(io::parent_dir(tile::TileStore::tiles_path(new_base)));
  if (opts.crash == CrashPoint::kAfterNewGeneration)
    throw CrashInjected("after writing new generation files");

  // 3. Publish: temp manifest, fsync, atomic rename, parent-dir fsync.
  const std::string manifest = tile::TileStore::current_path(base);
  const std::string manifest_tmp = manifest + ".tmp";
  {
    io::File f(manifest_tmp, io::OpenMode::kWrite);
    const std::string text = std::to_string(stats.new_generation) + "\n";
    f.pwrite_full(text.data(), text.size(), 0);
    f.sync();
  }
  if (opts.crash == CrashPoint::kAfterManifestTemp)
    throw CrashInjected("after writing manifest temp");
  io::atomic_publish(manifest_tmp, manifest);
  if (opts.crash == CrashPoint::kAfterPublish)
    throw CrashInjected("after publishing manifest");

  // 4. The WAL's edges are now in the tiles: reset it under the new
  //    generation so they can never be replayed twice.
  EdgeWal(EdgeWal::path_for(base), stats.new_generation);

  // 5. Old generation files are garbage now; readers holding fds are fine.
  if (opts.remove_old_generation)
    remove_generation_files(
        tile::TileStore::generation_base(base, stats.old_generation));

  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

}  // namespace gstore::ingest
