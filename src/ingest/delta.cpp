#include "ingest/delta.h"

#include <algorithm>

#include "util/status.h"

namespace gstore::ingest {

namespace {
// Rough per-entry footprint of the bookkeeping maps (bucket pointer, hash
// node, key, vector header). Exact malloc accounting is not worth the
// complexity — this only drives the compaction trigger.
constexpr std::uint64_t kTileEntryOverhead = 96;
constexpr std::uint64_t kDegreeEntryOverhead = 48;
}  // namespace

DeltaBuffer::DeltaBuffer(const tile::Grid& grid, const tile::TileStoreMeta& meta,
                         std::uint64_t budget_bytes)
    : grid_(grid),
      symmetric_(meta.symmetric()),
      directed_(meta.directed()),
      in_edges_(meta.in_edges()),
      n_(static_cast<graph::vid_t>(meta.vertex_count)),
      budget_bytes_(budget_bytes) {
  GS_CHECK_MSG(!meta.fat_tuples(),
               "delta overlay supports SNB stores only (fat-tuple stores are "
               "an ablation format)");
}

void DeltaBuffer::push_tuple(graph::vid_t src, graph::vid_t dst) {
  const tile::TileCoord c = grid_.tile_of(src, dst);
  const std::uint64_t idx = grid_.layout_index(c.i, c.j);
  auto [it, inserted] = tiles_.try_emplace(idx);
  if (inserted) memory_bytes_ += kTileEntryOverhead;
  it->second.push_back(tile::snb_encode(src, dst, grid_.tile_base(c.i),
                                        grid_.tile_base(c.j)));
  memory_bytes_ += sizeof(tile::SnbEdge);
  ++tuple_count_;
  dirty_tiles_.insert(idx);
}

std::vector<std::uint64_t> DeltaBuffer::take_dirty_tiles() {
  std::vector<std::uint64_t> out(dirty_tiles_.begin(), dirty_tiles_.end());
  dirty_tiles_.clear();
  std::sort(out.begin(), out.end());
  return out;
}

bool DeltaBuffer::add(graph::Edge e) {
  if (e.src >= n_ || e.dst >= n_)
    throw InvalidArgument(
        "ingested edge (" + std::to_string(e.src) + ", " +
        std::to_string(e.dst) + ") is outside the store's vertex range [0, " +
        std::to_string(n_) + ") — the vertex set is fixed at conversion time");
  if (e.src == e.dst) return false;  // converter drops self loops too

  // Degree deltas first, in the .deg file's semantics (out-degree for
  // directed stores, total degree for undirected), in the edge's original
  // orientation.
  auto bump = [&](graph::vid_t v) {
    auto [it, inserted] = degree_delta_.try_emplace(v, 0);
    if (inserted) memory_bytes_ += kDegreeEntryOverhead;
    ++it->second;
  };
  if (directed_) {
    bump(e.src);
  } else {
    bump(e.src);
    bump(e.dst);
  }

  // Tuples exactly as the converter stores them.
  if (directed_) {
    if (in_edges_) push_tuple(e.dst, e.src);
    else push_tuple(e.src, e.dst);
  } else if (symmetric_) {
    if (e.src > e.dst) std::swap(e.src, e.dst);
    push_tuple(e.src, e.dst);
  } else {
    // Full-matrix undirected ablation: both orientations are stored.
    push_tuple(e.src, e.dst);
    push_tuple(e.dst, e.src);
  }
  ++ingested_;
  return true;
}

std::uint64_t DeltaBuffer::add_batch(std::span<const graph::Edge> edges) {
  std::uint64_t accepted = 0;
  for (const graph::Edge& e : edges) accepted += add(e) ? 1 : 0;
  return accepted;
}

void DeltaBuffer::clear() {
  tiles_.clear();
  degree_delta_.clear();
  dirty_tiles_.clear();
  memory_bytes_ = 0;
  tuple_count_ = 0;
  ingested_ = 0;
}

std::span<const tile::SnbEdge> DeltaBuffer::tile_edges(
    std::uint64_t layout_idx) const {
  const auto it = tiles_.find(layout_idx);
  if (it == tiles_.end()) return {};
  return it->second;
}

std::vector<std::uint64_t> DeltaBuffer::nonempty_tiles() const {
  std::vector<std::uint64_t> out;
  out.reserve(tiles_.size());
  for (const auto& [idx, edges] : tiles_)
    if (!edges.empty()) out.push_back(idx);
  std::sort(out.begin(), out.end());
  return out;
}

void DeltaBuffer::apply_degree_deltas(std::span<graph::degree_t> deg) const {
  for (const auto& [v, d] : degree_delta_) {
    GS_CHECK_MSG(v < deg.size(), "degree delta for vertex outside .deg range");
    deg[v] += d;
  }
}

}  // namespace gstore::ingest
