#include "ingest/ingestor.h"

#include <utility>
#include <vector>

#include "util/status.h"

namespace gstore::ingest {

EdgeIngestor::EdgeIngestor(std::string base, IngestorOptions options)
    : base_(std::move(base)), options_(options) {
  MutexLock lock(mu_);
  // GL-SAFE(GL1): construction is single-threaded; the lock exists only to
  // honor open_generation()'s GSTORE_REQUIRES(mu_) contract.
  open_generation();
}

void EdgeIngestor::open_generation() {
  store_.emplace(tile::TileStore::open(base_, options_.device));
  delta_ = std::make_unique<DeltaBuffer>(store_->grid(), store_->meta(),
                                         options_.delta_budget_bytes);

  // Crash recovery: edges the WAL acknowledged under this generation were
  // never compacted — rebuild the overlay from them. A WAL stamped with a
  // different generation is stale (a crash landed between manifest publish
  // and WAL reset); its edges already live in the tiles, and the EdgeWal
  // constructor below resets it rather than letting them be replayed twice.
  const std::uint32_t gen = store_->meta().generation;
  const WalReplay replayed = EdgeWal::replay(EdgeWal::path_for(base_));
  if (replayed.exists && replayed.generation == gen)
    delta_->add_batch(replayed.edges);
  wal_ = std::make_unique<EdgeWal>(EdgeWal::path_for(base_), gen);

  store_->attach_overlay(delta_.get());
}

std::uint64_t EdgeIngestor::ingest(std::span<const graph::Edge> edges) {
  MutexLock lock(mu_);
  // Validate the whole batch before the WAL sees any of it, so a rejected
  // batch leaves both the log and the overlay untouched.
  const graph::vid_t n = store_->vertex_count();
  std::vector<graph::Edge> accepted;
  // GL-SAFE(GL1): ingest is intentionally serialized — validation must see
  // the same store generation the WAL append below publishes into, so the
  // whole batch runs under one lock by design (docs/INGEST.md).
  accepted.reserve(edges.size());
  for (const graph::Edge& e : edges) {
    if (e.src >= n || e.dst >= n)
      throw InvalidArgument(
          "ingested edge (" + std::to_string(e.src) + ", " +
          std::to_string(e.dst) + ") is outside the store's vertex range [0, " +
          std::to_string(n) + ")");
    if (e.src == e.dst) continue;  // same drop rule as the converter
    // GL-SAFE(GL1): see the serialized-ingest rationale on the reserve.
    accepted.push_back(e);
  }
  if (accepted.empty()) return 0;

  // GL-SAFE(GL1): durability point — the WAL write must happen inside the
  // ingest lock so on-disk frame order equals overlay apply order.
  wal_->append(accepted);
  const std::uint64_t added = delta_->add_batch(accepted);
  GS_CHECK(added == accepted.size());

  // GL-SAFE(GL1): compaction is the ingestor's stop-the-world phase; it
  // rewrites the file set and must exclude concurrent ingest entirely.
  if (options_.auto_compact && delta_->full()) compact_locked({});
  return added;
}

EdgeIngestor::Snapshot EdgeIngestor::snapshot() const {
  MutexLock lock(mu_);
  Snapshot snap;
  snap.generation = store_->meta().generation;
  snap.delta_edges = delta_->ingested_edges();
  if (snap.delta_edges > 0) {
    // GL-SAFE(GL1): the copy must be taken under the ingest lock or a
    // concurrent ingest() could mutate the buffer mid-copy; freezing the
    // overlay is precisely this method's contract.
    snap.delta = std::make_shared<const DeltaBuffer>(*delta_);
  }
  return snap;
}

CompactStats EdgeIngestor::compact(CompactOptions opts) {
  // GL-SAFE(GL1): compaction is the stop-the-world phase (see ingest());
  // the whole body runs under the ingest lock by design.
  MutexLock lock(mu_);
  return compact_locked(opts);  // GL-SAFE(GL1): stop-the-world (see ingest())
}

CompactStats EdgeIngestor::compact_locked(CompactOptions opts) {
  // Release the store (and its overlay pointer) before compaction rewrites
  // the file set; reopen picks up the published generation, whose WAL is
  // empty, so the fresh delta buffer starts empty too.
  store_->attach_overlay(nullptr);
  store_.reset();
  delta_.reset();
  wal_.reset();
  const CompactStats stats = compact_store(base_, opts);
  open_generation();
  return stats;
}

}  // namespace gstore::ingest
