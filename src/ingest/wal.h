// Crash-safe write-ahead edge log: <base>.wal.
//
// Layout: one 16-byte file header (magic, version, store generation) followed
// by CRC32-framed batches. Each frame is
//
//   u32 frame magic | u32 payload bytes | u32 edge count | u32 crc
//   payload: edge_count × graph::Edge (8 bytes each, original orientation)
//
// where the CRC covers the first 12 header bytes plus the payload, so replay
// can tell an intact frame from a torn tail. append() fsyncs after every
// frame — that fsync is the durability point an ingest acknowledgement rests
// on. Replay walks frames front to back and stops at the first frame that is
// incomplete (torn tail, the normal crash artifact — silently truncated on
// the next writer open) or that fails its CRC/sanity checks while fully
// present (real corruption, reported distinctly so verify can flag it).
//
// The file header records the store generation the frames apply to.
// Compaction folds the WAL into the next generation and resets the log; if a
// crash lands between publish and reset, the stale generation number tells
// the next process that these edges are already in the tiles and must be
// discarded, never replayed twice.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "io/file.h"
#include "io/source.h"
#include "util/sync.h"

namespace gstore::ingest {

inline constexpr std::uint64_t kWalFileMagic = 0x4753544f52453157ULL;  // "GSTORE1W"
inline constexpr std::uint32_t kWalFrameMagic = 0x4c415747u;           // "GWAL"
inline constexpr std::uint32_t kWalVersion = 1;
// Sanity cap on a single frame's payload: headers claiming more are treated
// as corruption, bounding what a garbled length field can make replay
// allocate.
inline constexpr std::uint32_t kWalMaxFrameBytes = 64u << 20;

struct WalFileHeader {
  std::uint64_t magic = kWalFileMagic;
  std::uint32_t version = kWalVersion;
  std::uint32_t generation = 0;
};
static_assert(sizeof(WalFileHeader) == 16);

struct WalFrameHeader {
  std::uint32_t magic = kWalFrameMagic;
  std::uint32_t payload_bytes = 0;
  std::uint32_t edge_count = 0;
  std::uint32_t crc = 0;  // crc32 over the 12 bytes above + payload
};
static_assert(sizeof(WalFrameHeader) == 16);

enum class WalTail {
  kClean,      // file ends exactly on a frame boundary
  kTruncated,  // torn trailing frame (crash artifact); ignored on replay
  kCorrupt,    // a fully present frame failed CRC/sanity checks
};

struct WalReplay {
  std::vector<graph::Edge> edges;
  std::uint32_t generation = 0;
  std::uint64_t frames = 0;
  std::uint64_t valid_bytes = 0;    // file header + every intact frame
  std::uint64_t dropped_bytes = 0;  // bytes past valid_bytes
  WalTail tail = WalTail::kClean;
  // File present with an intact header. A missing or sub-header-size file
  // replays as empty with exists=false (a fresh store simply has no WAL).
  bool exists = false;
};

class EdgeWal {
 public:
  static std::string path_for(const std::string& base) { return base + ".wal"; }

  // Scans `path`, CRC-checking every frame; tolerates a torn tail.
  static WalReplay replay(const std::string& path);

  // Same scan over an abstract source (`name` labels error messages). This
  // is the core implementation; the path overload opens the file and
  // delegates. Taking a Source lets recovery tests replay through an
  // io::FaultInjectingSource (torn-tail injection) or a striped set.
  static WalReplay replay(const io::Source& src, const std::string& name);

  // Opens (creating if needed) the WAL for appending on behalf of a store at
  // `generation`. A stale-generation or torn log is reset/truncated here, so
  // the first append lands on a durable, frame-aligned tail. Callers that
  // need the old contents must replay() before constructing the writer.
  EdgeWal(std::string path, std::uint32_t generation);

  // Appends one CRC-framed batch and fsyncs it (the durability point).
  // Empty batches are a no-op. Safe to call from several writer threads:
  // frames are serialized under the internal mutex, so each lands intact at
  // the current tail.
  void append(std::span<const graph::Edge> edges) GSTORE_EXCLUDES(mu_);

  // Empties the log and stamps it with `generation` (the post-compaction
  // reset). Durable before return.
  void reset(std::uint32_t generation) GSTORE_EXCLUDES(mu_);

  std::uint64_t size_bytes() const GSTORE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return end_offset_;
  }
  std::uint32_t generation() const GSTORE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return generation_;
  }
  const std::string& path() const noexcept { return path_; }

 private:
  void write_file_header() GSTORE_REQUIRES(mu_);

  const std::string path_;
  mutable Mutex mu_{"EdgeWal::mu_"};
  io::File file_ GSTORE_GUARDED_BY(mu_);
  std::uint32_t generation_ GSTORE_GUARDED_BY(mu_) = 0;
  std::uint64_t end_offset_ GSTORE_GUARDED_BY(mu_) = 0;
};

}  // namespace gstore::ingest
