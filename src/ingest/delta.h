// In-memory delta of ingested edges, grouped by tile and SNB-encoded.
//
// This is the overlay half of the online ingestion design (GraphChi-DB's
// log-structured in-memory buffer adapted to G-Store's tile layout): edges
// acknowledged through the WAL live here, bucketed by destination tile in
// the store's own canonical orientation and SNB encoding, so the SCR
// engine's overlay read path can splice them into tile scans with zero
// translation. Degree deltas are tracked alongside so load_degrees() stays
// consistent with what tile scans deliver.
//
// Concurrency contract: one writer (the ingestor), readers only between
// writes. Engine runs read the overlay from multiple threads, which is safe
// because they never overlap with add()/clear() — the same contract the
// TileStore itself has ("thread-compatible").
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/types.h"
#include "tile/grid.h"
#include "tile/overlay.h"
#include "tile/tile_file.h"

namespace gstore::ingest {

class DeltaBuffer final : public tile::TileOverlay {
 public:
  // Copies the grid/meta so the buffer stays valid across store re-opens
  // (the ingestor re-creates it per generation anyway). `budget_bytes` is
  // the MemoryBudget-style allocation: full() turns true once the estimated
  // footprint reaches it, which is the ingestor's compaction trigger.
  DeltaBuffer(const tile::Grid& grid, const tile::TileStoreMeta& meta,
              std::uint64_t budget_bytes);

  // Canonicalizes and buffers one edge given in original (src, dst)
  // orientation: symmetric stores get the upper-triangle tuple, full-matrix
  // undirected stores both orientations, in-edge stores the swapped tuple —
  // exactly the converter's rules. Self loops are dropped (returns false,
  // matching the converter's drop_self_loops default); endpoints outside the
  // store's vertex range throw InvalidArgument (the vertex set is fixed at
  // conversion time — see docs/INGEST.md).
  bool add(graph::Edge e);
  // Returns the number of edges accepted (self loops skipped).
  std::uint64_t add_batch(std::span<const graph::Edge> edges);

  void clear();

  std::uint64_t memory_bytes() const noexcept { return memory_bytes_; }
  std::uint64_t budget_bytes() const noexcept { return budget_bytes_; }
  bool full() const noexcept { return memory_bytes_ >= budget_bytes_; }
  // Logical edges accepted (one per add(), regardless of how many tuples
  // the store format needs for it).
  std::uint64_t ingested_edges() const noexcept { return ingested_; }

  // Incremental-recompute hook (ScrEngine::resume): the layout indices of
  // tiles touched by add()/add_batch() since the last take, sorted
  // ascending, clearing the set. A follow-up analytics pass re-activates
  // exactly these tiles instead of rerunning from scratch.
  std::vector<std::uint64_t> take_dirty_tiles();

  // ---- tile::TileOverlay ----
  std::span<const tile::SnbEdge> tile_edges(
      std::uint64_t layout_idx) const override;
  std::vector<std::uint64_t> nonempty_tiles() const override;
  std::uint64_t edge_count() const override { return tuple_count_; }
  void apply_degree_deltas(std::span<graph::degree_t> deg) const override;

 private:
  void push_tuple(graph::vid_t src, graph::vid_t dst);

  tile::Grid grid_;
  bool symmetric_ = false;
  bool directed_ = false;
  bool in_edges_ = false;
  graph::vid_t n_ = 0;
  std::uint64_t budget_bytes_ = 0;
  std::uint64_t memory_bytes_ = 0;
  std::uint64_t tuple_count_ = 0;
  std::uint64_t ingested_ = 0;
  std::unordered_map<std::uint64_t, std::vector<tile::SnbEdge>> tiles_;
  std::unordered_map<graph::vid_t, graph::degree_t> degree_delta_;
  std::unordered_set<std::uint64_t> dirty_tiles_;  // touched since last take
};

}  // namespace gstore::ingest
