#include "ingest/wal.h"

#include <cstddef>
#include <cstring>

#include "util/checked.h"
#include "util/crc32.h"
#include "util/status.h"

namespace gstore::ingest {

namespace {
std::uint32_t frame_crc(const WalFrameHeader& h,
                        std::span<const graph::Edge> edges) {
  // The CRC chains over the header prefix (magic/length/count) and the
  // payload so a torn header and a torn payload both fail the check.
  const std::uint32_t seed = crc32(&h, offsetof(WalFrameHeader, crc));
  return crc32(edges.data(), edges.size_bytes(), seed);
}
}  // namespace

WalReplay EdgeWal::replay(const std::string& path) {
  if (!io::File::exists(path)) return {};
  io::File f(path, io::OpenMode::kRead);
  return replay(f, path);
}

WalReplay EdgeWal::replay(const io::Source& f, const std::string& name) {
  WalReplay out;
  const std::uint64_t size = f.size();
  if (size < sizeof(WalFileHeader)) {
    // A file this short cannot even hold the header — treat as absent (a
    // crash during initial creation); the writer rewrites it from scratch.
    out.dropped_bytes = size;
    out.tail = size == 0 ? WalTail::kClean : WalTail::kTruncated;
    return out;
  }

  WalFileHeader fh;
  f.pread_full(&fh, sizeof(fh), 0);
  if (fh.magic != kWalFileMagic)
    throw FormatError(name + " is not a g-store WAL (magic mismatch)");
  if (fh.version != kWalVersion)
    throw FormatError(name + " has WAL version " + std::to_string(fh.version) +
                      "; this reader understands only " +
                      std::to_string(kWalVersion));
  out.exists = true;
  out.generation = fh.generation;
  out.valid_bytes = sizeof(fh);

  std::uint64_t off = sizeof(fh);
  std::vector<graph::Edge> payload;
  while (off < size) {
    const std::uint64_t remaining = size - off;
    if (remaining < sizeof(WalFrameHeader)) {
      out.tail = WalTail::kTruncated;
      break;
    }
    WalFrameHeader h;
    f.pread_full(&h, sizeof(h), off);
    if (h.payload_bytes > remaining - sizeof(h)) {
      // Header names more payload than the file holds: a torn append.
      out.tail = WalTail::kTruncated;
      break;
    }
    if (h.magic != kWalFrameMagic || h.payload_bytes > kWalMaxFrameBytes ||
        h.payload_bytes != checked_mul(h.edge_count, sizeof(graph::Edge),
                                       "WAL frame payload size")) {
      out.tail = WalTail::kCorrupt;
      break;
    }
    // The == checked_mul test above already ties both fields to the frame
    // budget; the ranged reads keep that bound visible at the sinks.
    payload.resize(checked_in(h.edge_count, 0,
                              kWalMaxFrameBytes / sizeof(graph::Edge),
                              "WAL frame edge count"));
    if (h.edge_count > 0)
      f.pread_full(payload.data(),
                   checked_in(h.payload_bytes, 0, kWalMaxFrameBytes,
                              "WAL frame payload bytes"),
                   off + sizeof(h));
    if (frame_crc(h, payload) != h.crc) {
      out.tail = WalTail::kCorrupt;
      break;
    }
    out.edges.insert(out.edges.end(), payload.begin(), payload.end());
    ++out.frames;
    off = checked_add(checked_add(off, sizeof(h)), h.payload_bytes,
                      "WAL scan offset");
    out.valid_bytes = off;
  }
  out.dropped_bytes = size - out.valid_bytes;
  return out;
}

EdgeWal::EdgeWal(std::string path, std::uint32_t generation)
    : path_(std::move(path)) {
  // No other thread can hold a reference yet, but the lock keeps the
  // GSTORE_REQUIRES(mu_) contract of write_file_header() honest.
  MutexLock lock(mu_);
  generation_ = generation;
  const WalReplay existing = replay(path_);
  file_ = io::File(path_, io::OpenMode::kReadWrite);
  if (!existing.exists || existing.generation != generation) {
    // Fresh log, a torn initial creation, or a log for a generation that has
    // already been compacted away: start over.
    // GL-SAFE(GL1): single-threaded construction; the lock only satisfies
    // write_file_header()'s GSTORE_REQUIRES(mu_) contract.
    write_file_header();
    return;
  }
  end_offset_ = existing.valid_bytes;
  if (existing.dropped_bytes > 0) {
    // GL-SAFE(GL1): same single-threaded-construction rationale as above.
    file_.truncate(end_offset_);
    // GL-SAFE(GL1): same single-threaded-construction rationale as above.
    file_.sync();
  }
}

void EdgeWal::write_file_header() {
  file_.truncate(0);
  WalFileHeader fh;
  fh.generation = generation_;
  file_.pwrite_full(&fh, sizeof(fh), 0);
  file_.sync();
  end_offset_ = sizeof(fh);
}

void EdgeWal::append(std::span<const graph::Edge> edges) {
  if (edges.empty()) return;
  GS_CHECK_MSG(edges.size_bytes() <= kWalMaxFrameBytes,
               "WAL batch exceeds the per-frame cap; split it");
  WalFrameHeader h;
  h.payload_bytes = static_cast<std::uint32_t>(edges.size_bytes());
  h.edge_count = static_cast<std::uint32_t>(edges.size());
  h.crc = frame_crc(h, edges);

  // One buffer, one pwrite: the kernel may still tear it on crash, but the
  // CRC makes any torn prefix detectable on replay.
  std::vector<std::uint8_t> buf(sizeof(h) + edges.size_bytes());
  std::memcpy(buf.data(), &h, sizeof(h));
  std::memcpy(buf.data() + sizeof(h), edges.data(), edges.size_bytes());
  MutexLock lock(mu_);
  // GL-SAFE(GL1): WAL ordering contract — the write happens under mu_ so
  // on-disk frame order equals append order; the lock IS the serialization.
  file_.pwrite_full(buf.data(), buf.size(), end_offset_);
  // GL-SAFE(GL1): the fsync is part of the same durability contract; an
  // append is not acknowledged until its frame is on disk.
  file_.sync();
  end_offset_ += buf.size();
}

void EdgeWal::reset(std::uint32_t generation) {
  MutexLock lock(mu_);
  generation_ = generation;
  // GL-SAFE(GL1): reset races with append by design of the compactor —
  // the truncate+header rewrite must exclude concurrent appends.
  write_file_header();
}

}  // namespace gstore::ingest
