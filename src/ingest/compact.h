// Snapshot-safe compaction: fold the WAL into a new store generation.
//
// Protocol (docs/INGEST.md has the full walk-through):
//   1. Decode the live generation's tiles back to original-orientation edges
//      and merge them with the WAL's replayed edges (the WAL — not the
//      in-memory delta — is the source of truth for un-compacted writes).
//   2. Re-run the two-pass converter into a fresh file set
//      <base>.g<N>.tiles/.sei/.deg, N = old generation + 1, fsync them.
//   3. Write <base>.current.tmp naming N, fsync, then atomically rename it
//      over <base>.current and fsync the parent directory — the publish
//      point. A crash before the rename leaves the old generation live; a
//      crash after leaves the new one. Never both, never neither.
//   4. Reset the WAL, stamping it with N. If a crash lands between 3 and 4,
//      the stale generation number in the WAL header tells the next process
//      those edges are already compacted in — they are discarded, not
//      replayed twice.
//   5. Best-effort removal of the old generation's files. In-flight readers
//      that opened them keep valid fds (POSIX unlink semantics) and finish
//      their run on the old snapshot.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace gstore::ingest {

// Crash-injection points for recovery tests: compact_store throws
// CrashInjected immediately after completing the named step, simulating a
// process kill at the worst moments of the protocol.
enum class CrashPoint {
  kNone,
  kAfterNewGeneration,  // new g<N> files durable, manifest untouched
  kAfterManifestTemp,   // .current.tmp durable, rename not yet done
  kAfterPublish,        // manifest renamed, WAL not yet reset
};

struct CrashInjected : Error {
  explicit CrashInjected(const std::string& where)
      : Error("crash injected " + where) {}
};

struct CompactOptions {
  CrashPoint crash = CrashPoint::kNone;
  // Unlink the previous generation's files after publish. Disable to keep
  // them around (e.g. to prove in-flight readers survive).
  bool remove_old_generation = true;
};

struct CompactStats {
  std::uint32_t old_generation = 0;
  std::uint32_t new_generation = 0;
  std::uint64_t base_edges = 0;    // logical edges decoded from the old tiles
  std::uint64_t wal_edges = 0;     // logical edges folded in from the WAL
  std::uint64_t merged_edges = 0;  // edges handed to the converter
  std::uint64_t bytes_written = 0;
  double seconds = 0;
};

// Compacts the store at logical base `base` (the path gstore_convert was
// given, not a generation-suffixed file base). Safe to run when the WAL is
// missing, empty, or stale — it then just rewrites the store as the next
// generation. Single-writer: the caller must ensure no other compaction or
// ingest writer is active on `base`.
CompactStats compact_store(const std::string& base, CompactOptions opts = {});

// Best-effort unlink of one generation's file set (<gen_base>.tiles/.sei/
// .deg). Step 5 of the compaction protocol, exposed so callers that pin
// generations (serve::SnapshotManager) can compact with
// remove_old_generation=false and perform the unlink themselves once the
// last pin on the retired generation drops. Readers holding open fds keep
// them valid (POSIX unlink semantics). Never throws: a generation file we
// cannot unlink only wastes disk; the manifest already points elsewhere.
void remove_generation_files(const std::string& gen_base) noexcept;

}  // namespace gstore::ingest
