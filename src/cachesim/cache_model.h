// Set-associative cache model (paper Figure 12 substitute).
//
// The paper reads hardware LLC transaction/miss counters; those are not
// available in this container, so the grouping experiment replays the
// engine's metadata access stream through this model instead. A two-level
// hierarchy (L2 → LLC) with LRU replacement and write-allocate captures the
// locality effect physical grouping is designed for.
#pragma once

#include <cstdint>
#include <vector>

namespace gstore::cachesim {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

// One cache level. LRU within each set, true-LRU stamps.
class CacheLevel {
 public:
  CacheLevel(std::uint64_t size_bytes, unsigned line_bytes, unsigned ways);

  // Returns true on hit; on miss the line is installed (evicting LRU).
  bool access(std::uint64_t addr);

  const CacheStats& stats() const noexcept { return stats_; }
  void reset();

  std::uint64_t size_bytes() const noexcept { return size_; }
  unsigned line_bytes() const noexcept { return line_; }
  unsigned ways() const noexcept { return ways_; }
  std::uint64_t sets() const noexcept { return sets_; }

 private:
  struct Way {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t stamp = 0;
    bool valid = false;
  };

  std::uint64_t size_;
  unsigned line_;
  unsigned ways_;
  std::uint64_t sets_;
  unsigned line_shift_;
  std::uint64_t clock_ = 0;
  std::vector<Way> table_;  // sets_ * ways_
  CacheStats stats_;
};

// L2 → LLC hierarchy; an access missing in L2 proceeds to the LLC, so LLC
// statistics correspond to the "LLC operations" the paper counts.
class CacheHierarchy {
 public:
  // Defaults mirror the paper's Xeon E5-2683: 256K 8-way L2, 16M 16-way LLC.
  explicit CacheHierarchy(std::uint64_t l2_bytes = 256ull << 10,
                          std::uint64_t llc_bytes = 16ull << 20,
                          unsigned line_bytes = 64);

  void access(std::uint64_t addr);

  const CacheStats& l2_stats() const noexcept { return l2_.stats(); }
  const CacheStats& llc_stats() const noexcept { return llc_.stats(); }
  // "LLC operations" = accesses that reached the LLC (L2 misses).
  std::uint64_t llc_operations() const noexcept { return llc_.stats().accesses; }
  std::uint64_t llc_misses() const noexcept { return llc_.stats().misses; }
  void reset();

 private:
  CacheLevel l2_;
  CacheLevel llc_;
};

}  // namespace gstore::cachesim
