#include "cachesim/cache_model.h"

#include "util/bitops.h"
#include "util/status.h"

namespace gstore::cachesim {

CacheLevel::CacheLevel(std::uint64_t size_bytes, unsigned line_bytes,
                       unsigned ways)
    : size_(size_bytes), line_(line_bytes), ways_(ways) {
  GS_CHECK_MSG(gstore::is_pow2(line_bytes), "cache line size must be pow2");
  GS_CHECK_MSG(ways >= 1, "cache needs at least one way");
  GS_CHECK_MSG(size_bytes % (static_cast<std::uint64_t>(line_bytes) * ways) == 0,
               "cache size must be a multiple of line*ways");
  sets_ = size_bytes / (static_cast<std::uint64_t>(line_bytes) * ways);
  GS_CHECK_MSG(gstore::is_pow2(sets_), "cache set count must be pow2");
  line_shift_ = gstore::bits_for(line_bytes);
  table_.resize(sets_ * ways_);
}

bool CacheLevel::access(std::uint64_t addr) {
  ++stats_.accesses;
  const std::uint64_t line_addr = addr >> line_shift_;
  const std::uint64_t set = line_addr & (sets_ - 1);
  const std::uint64_t tag = line_addr >> gstore::bits_for(sets_);
  Way* base = &table_[set * ways_];

  for (unsigned w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.stamp = ++clock_;
      ++stats_.hits;
      return true;
    }
  }
  // Miss: victim is the first invalid way, else the LRU way.
  Way* victim = base;
  for (unsigned w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].stamp < victim->stamp) victim = &base[w];
  }
  ++stats_.misses;
  victim->valid = true;
  victim->tag = tag;
  victim->stamp = ++clock_;
  return false;
}

void CacheLevel::reset() {
  for (auto& w : table_) w = Way{};
  stats_ = CacheStats{};
  clock_ = 0;
}

CacheHierarchy::CacheHierarchy(std::uint64_t l2_bytes, std::uint64_t llc_bytes,
                               unsigned line_bytes)
    : l2_(l2_bytes, line_bytes, 8), llc_(llc_bytes, line_bytes, 16) {}

void CacheHierarchy::access(std::uint64_t addr) {
  if (!l2_.access(addr)) llc_.access(addr);
}

void CacheHierarchy::reset() {
  l2_.reset();
  llc_.reset();
}

}  // namespace gstore::cachesim
